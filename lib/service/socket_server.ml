(* The hardened daemon behind [stencilc --serve --socket/--tcp]: a
   Unix-domain (or loopback TCP) listener accepting multiple concurrent
   client connections, each served by its own domain running the same
   line protocol as the stdin/stdout mode ([Serve.serve_connection])
   against the process-wide artifact cache — which already guarantees
   compile-exactly-once under contention (promise-per-key).

   Cold compiles from all connections are coalesced by a batching
   scheduler: connection domains enqueue the compile thunk and block;
   one worker domain drains everything queued at that moment as a single
   batch (one traced invocation), so simultaneous requests for distinct
   digests share one pipeline activation instead of racing N pipelines,
   and every response reports how long the request sat queued
   ([queue_ms]) apart from how long it compiled ([compile_ms]). *)

type endpoint = Unix_path of string | Tcp_port of int

let endpoint_name = function
  | Unix_path p -> "unix:" ^ p
  | Tcp_port p -> Printf.sprintf "tcp:127.0.0.1:%d" p

(* ---------- the compile batcher ---------- *)

module Batch = struct
  type job = {
    work : unit -> Artifact.t;
    enqueued : float;
    mutable started : float;
    mutable outcome : (Artifact.t, exn) result option;
  }

  type t = {
    lock : Mutex.t;
    nonempty : Condition.t;  (* queue went non-empty (or stop) *)
    finished : Condition.t;  (* some job published its outcome *)
    mutable queue : job list;  (* newest first *)
    mutable stopped : bool;
    mutable batches : int;
    mutable jobs : int;
    mutable worker : unit Domain.t option;
  }

  let rec worker_loop t =
    Mutex.lock t.lock;
    while t.queue = [] && not t.stopped do
      Condition.wait t.nonempty t.lock
    done;
    let batch = List.rev t.queue in
    t.queue <- [];
    let stop_after = t.stopped && batch = [] in
    if batch <> [] then begin
      t.batches <- t.batches + 1;
      t.jobs <- t.jobs + List.length batch
    end;
    Mutex.unlock t.lock;
    if stop_after then ()
    else begin
      let run_batch () =
        List.iter
          (fun job ->
            job.started <- Unix.gettimeofday ();
            let outcome =
              match job.work () with
              | art -> Ok art
              | exception e -> Error e
            in
            Mutex.lock t.lock;
            job.outcome <- Some outcome;
            Condition.broadcast t.finished;
            Mutex.unlock t.lock)
          batch
      in
      (match batch with
      | [ _ ] -> run_batch ()
      | _ ->
          Obs.Trace.with_span ~cat: "service"
            (Printf.sprintf "compile-batch[n=%d]" (List.length batch))
            run_batch);
      worker_loop t
    end

  let create () =
    let t =
      {
        lock = Mutex.create ();
        nonempty = Condition.create ();
        finished = Condition.create ();
        queue = [];
        stopped = false;
        batches = 0;
        jobs = 0;
        worker = None;
      }
    in
    t.worker <- Some (Domain.spawn (fun () -> worker_loop t));
    t

  (* Enqueue one cold compile and block until the worker publishes its
     outcome; returns the artifact and the seconds spent queued.  After
     [stop], falls back to compiling inline so late requests still
     succeed. *)
  let schedule t (work : unit -> Artifact.t) : Artifact.t * float =
    let job =
      { work; enqueued = Unix.gettimeofday (); started = 0.; outcome = None }
    in
    Mutex.lock t.lock;
    if t.stopped then begin
      Mutex.unlock t.lock;
      (work (), 0.)
    end
    else begin
      t.queue <- job :: t.queue;
      Condition.signal t.nonempty;
      while job.outcome = None do
        Condition.wait t.finished t.lock
      done;
      Mutex.unlock t.lock;
      let queue_s = Float.max 0. (job.started -. job.enqueued) in
      match job.outcome with
      | Some (Ok art) -> (art, queue_s)
      | Some (Error e) -> raise e
      | None -> assert false
    end

  let stop t =
    Mutex.lock t.lock;
    t.stopped <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.lock;
    match t.worker with
    | Some d ->
        t.worker <- None;
        Domain.join d
    | None -> ()

  let counts t =
    Mutex.lock t.lock;
    let r = (t.batches, t.jobs) in
    Mutex.unlock t.lock;
    r
end

(* ---------- the listener ---------- *)

let sockaddr_of = function
  | Unix_path path -> Unix.ADDR_UNIX path
  | Tcp_port port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let listen_fd endpoint =
  let addr = sockaddr_of endpoint in
  let fd =
    Unix.socket ~cloexec: true (Unix.domain_of_sockaddr addr)
      Unix.SOCK_STREAM 0
  in
  (match endpoint with
  | Unix_path path ->
      (* A stale socket file from a dead daemon would make bind fail. *)
      if Sys.file_exists path then (try Sys.remove path with Sys_error _ -> ())
  | Tcp_port _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
  Unix.bind fd addr;
  Unix.listen fd 64;
  let cleanup () =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    match endpoint with
    | Unix_path path -> ( try Sys.remove path with Sys_error _ -> ())
    | Tcp_port _ -> ()
  in
  (fd, addr, cleanup)

type stats = { connections : int; batches : int; batched_jobs : int }

let run ?(handlers = Serve.default_handlers) ?(max_clients = 8) ?on_ready
    (endpoint : endpoint) : stats =
  (* A client that disconnects mid-response must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd, addr, cleanup = listen_fd endpoint in
  let batcher = Batch.create () in
  let handlers =
    { handlers with Serve.scheduler = Some (Batch.schedule batcher) }
  in
  let stop = Atomic.make false in
  (* Unblock the blocking [accept] from a handler domain that just saw a
     [shutdown] request: a throwaway self-connection. *)
  let wake () =
    match
      let s =
        Unix.socket ~cloexec: true (Unix.domain_of_sockaddr addr)
          Unix.SOCK_STREAM 0
      in
      Unix.connect s addr;
      s
    with
    | s -> ( try Unix.close s with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  in
  let workers = Queue.create () in
  let connections = ref 0 in
  Option.iter (fun f -> f ()) on_ready;
  let rec accept_loop () =
    if Atomic.get stop then ()
    else
      match Unix.accept ~cloexec: true fd with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ -> ()
      | conn, _ ->
          if Atomic.get stop then (
            (try Unix.close conn with Unix.Unix_error _ -> ()))
          else begin
            incr connections;
            (* Bound live domains: join the oldest before admitting more.
               Joining the head can wait on one slow client, which is the
               deliberate backpressure for a compile daemon. *)
            if Queue.length workers >= max_clients then
              Domain.join (Queue.pop workers);
            let d =
              Domain.spawn (fun () ->
                  let ic = Unix.in_channel_of_descr conn in
                  let oc = Unix.out_channel_of_descr conn in
                  (match Serve.serve_connection ~handlers ic oc with
                  | `Shutdown ->
                      Atomic.set stop true;
                      wake ()
                  | `Quit | `Eof -> ()
                  | exception _ -> ());
                  (try flush oc with Sys_error _ -> ());
                  try Unix.close conn with Unix.Unix_error _ -> ())
            in
            Queue.push d workers;
            accept_loop ()
          end
  in
  accept_loop ();
  Queue.iter Domain.join workers;
  Queue.clear workers;
  Batch.stop batcher;
  cleanup ();
  let batches, batched_jobs = Batch.counts batcher in
  { connections = !connections; batches; batched_jobs }

(** Compilation as a pure, cacheable function.

    An artifact is everything that comes out of compiling one module for
    one target with one executor: the fully lowered module and the
    rank-independent compiled program ({!Interp.Executor.shared}).  The
    key is a content hash — the canonical rendering of the input module
    ({!Ir.Printer.canonical_module_string}) combined with the target
    fingerprint and executor name — so structurally identical requests
    share one compilation regardless of value-id history or attribute
    order, across ranks, runs and --serve clients. *)

type t = {
  digest : string;  (** hex content hash keying the cache *)
  target : Core.Pipeline.target;
  executor_name : string;
  lowered : Ir.Op.t;  (** the module after the target's full pipeline *)
  program : Interp.Executor.shared;
      (** rank-independent compiled form; [program.instantiate] binds one
          rank's externs *)
  compile_s : float;  (** seconds spent lowering + compiling (0 on a hit) *)
}

val digest_of :
  ?executor:Interp.Executor.t -> target:Core.Pipeline.target -> Ir.Op.t -> string
(** The content hash (hex) an artifact for this request would carry. *)

val compile :
  ?executor:Interp.Executor.t -> target:Core.Pipeline.target -> Ir.Op.t -> t
(** Compile unconditionally (no cache): run the target's pass pipeline,
    verify, and compile the result with [executor] (default: the
    reference interpreter, whose compile step is the identity). *)

val get :
  ?executor:Interp.Executor.t -> target:Core.Pipeline.target -> Ir.Op.t -> t
(** {!compile} through the process-wide cache: the first request for a
    digest compiles, every later (or concurrent) request reuses the same
    artifact. *)

val get_cached :
  ?executor:Interp.Executor.t ->
  target:Core.Pipeline.target ->
  Ir.Op.t ->
  t * [ `Hit | `Miss ]
(** {!get}, also reporting whether the artifact was already resident. *)

val stats : unit -> Cache.stats
(** Hit/miss/compile-time counters of the process-wide cache. *)

val clear : unit -> unit
(** Drop the process-wide cache (tests and benchmarks). *)

val cache_length : unit -> int

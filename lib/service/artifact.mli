(** Compilation as a pure, cacheable, persistable function.

    An artifact is everything that comes out of compiling one module for
    one target with one executor: the fully lowered module and the
    rank-independent compiled program ({!Interp.Executor.shared}).  The
    key is a content hash — the canonical rendering of the input module
    ({!Ir.Printer.canonical_module_string}) combined with the target
    fingerprint and executor name — so structurally identical requests
    share one compilation regardless of value-id history or attribute
    order, across ranks, runs and --serve clients.

    With a {!Store} installed ({!set_store}), every cold compile is also
    persisted to disk, and a restarted process answers previously-seen
    digests by re-parsing the persisted lowered module and re-running
    only the executor's [compile] step — the pass pipeline is skipped. *)

type t = {
  digest : string;  (** hex content hash keying the cache *)
  target : Core.Pipeline.target;
  executor_name : string;
  lowered : Ir.Op.t;  (** the module after the target's full pipeline *)
  program : Interp.Executor.shared;
      (** rank-independent compiled form; [program.instantiate] binds one
          rank's externs *)
  compile_s : float;
      (** seconds spent producing the artifact in this process: full
          lowering + executor compile on a cold compile, parse + executor
          compile on a store restore, 0 on a cache hit *)
}

val digest_of :
  ?executor:Interp.Executor.t -> target:Core.Pipeline.target -> Ir.Op.t -> string
(** The content hash (hex) an artifact for this request would carry. *)

val digest_of_parts :
  fingerprint:string -> executor_name:string -> string -> string
(** The same hash computed from its raw parts (fingerprint, executor
    name, canonical module text) — used to re-verify persisted artifacts
    without parsing them. *)

val compile :
  ?executor:Interp.Executor.t -> target:Core.Pipeline.target -> Ir.Op.t -> t
(** Compile unconditionally (no cache, no store): run the target's pass
    pipeline, verify, and compile the result with [executor] (default:
    the reference interpreter, whose compile step is the identity). *)

val get :
  ?executor:Interp.Executor.t -> target:Core.Pipeline.target -> Ir.Op.t -> t
(** {!compile} through the process-wide cache: the first request for a
    digest compiles, every later (or concurrent) request reuses the same
    artifact. *)

val get_cached :
  ?executor:Interp.Executor.t ->
  target:Core.Pipeline.target ->
  ?schedule:((unit -> t) -> t) ->
  Ir.Op.t ->
  t * [ `Hit | `Miss | `Store ]
(** {!get}, also reporting how the artifact was obtained: [`Hit] from the
    in-memory cache, [`Store] restored from the on-disk store (pipeline
    skipped), [`Miss] compiled cold.  [schedule] wraps the cold-compile
    thunk — the socket server's batcher uses it to coalesce simultaneous
    cold compiles onto one worker; store restores never queue. *)

val set_store : Store.t option -> unit
(** Install (or remove) the process-wide on-disk artifact store. *)

val store : unit -> Store.t option

val warm_start : ?limit:int -> unit -> int
(** Preload valid persisted artifacts from the installed store into the
    cache (restores, never full compiles); returns how many loaded.
    Entries with unknown targets or executors are skipped. *)

val set_policy : ?capacity:int -> ?eviction:Cache.eviction -> unit -> unit
(** Reconfigure the process-wide cache (see {!Cache.set_policy}). *)

val stats : unit -> Cache.stats
(** Hit/miss/compile-time counters of the process-wide cache. *)

val clear : unit -> unit
(** Drop the process-wide cache (tests, benchmarks, simulated restarts).
    The on-disk store, if any, is left intact. *)

val cache_length : unit -> int

(* Newline-delimited compile/run protocol over channels.  One request per
   line, one response line per request ("ok key=value ..." or
   "error <message>"); the artifact cache does the heavy lifting, so a
   warm server answers compile requests without recompiling.

   Framing rule: an [ir=<nbytes>] payload is consumed from the channel
   BEFORE any validation of the rest of the request.  Draining first is
   what keeps the stream in sync — if validation rejected the request
   while the payload was still unread, the loop would parse those bytes
   as the next request and desynchronize every later exchange. *)

type run_handler =
  Ir.Op.t ->
  Artifact.t ->
  ranks:int ->
  substrate:string ->
  threads:int ->
  (string * string) list

type compile_scheduler = (unit -> Artifact.t) -> Artifact.t * float

type handlers = {
  resolve_demo : string -> Ir.Op.t option;
  run : run_handler option;
  scheduler : compile_scheduler option;
}

let default_handlers = { resolve_demo = (fun _ -> None); run = None; scheduler = None }

(* ---------- request parsing ---------- *)

let split_words line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let kv_of_word w =
  match String.index_opt w '=' with
  | Some i ->
      (String.sub w 0 i, String.sub w (i + 1) (String.length w - i - 1))
  | None -> (w, "")

let parse_request line =
  match split_words line with
  | [] -> ("", [])
  | cmd :: rest -> (cmd, List.map kv_of_word rest)

let lookup params key = List.assoc_opt key params

let int_param params key default =
  match lookup params key with
  | Some v -> (
      match int_of_string_opt v with
      | Some n -> n
      | None -> failwith (Printf.sprintf "%s=%S is not an integer" key v))
  | None -> default

let bool_param params key default =
  match lookup params key with
  | Some v -> (
      match bool_of_string_opt v with
      | Some b -> b
      | None -> failwith (Printf.sprintf "%s=%S is not a bool" key v))
  | None -> default

let strategy_param params =
  match Option.value (lookup params "strategy") ~default: "slice2d" with
  | "slice1d" -> Core.Decomposition.Slice1d
  | "slice2d" -> Core.Decomposition.Slice2d
  | "slice3d" -> Core.Decomposition.Slice3d
  | s ->
      failwith
        (Printf.sprintf
           "unknown strategy %S (available: slice1d, slice2d, slice3d)" s)

let mode_param params =
  match Option.value (lookup params "mode") ~default: "faces" with
  | "faces" -> Core.Decomposition.Faces
  | "diagonals" -> Core.Decomposition.Diagonals
  | s ->
      failwith
        (Printf.sprintf "unknown mode %S (available: faces, diagonals)" s)

(* tile=8,8 — cache-block sizes for the tiled omp lowering; absent or
   empty means untiled.  Part of the compile target (and thus the
   artifact digest), unlike [threads] which is a pure runtime knob. *)
let tiles_param params =
  match lookup params "tile" with
  | None | Some "" -> []
  | Some spec ->
      List.map
        (fun w ->
          match int_of_string_opt (String.trim w) with
          | Some n when n > 0 -> n
          | _ ->
              failwith
                (Printf.sprintf
                   "tile=%S is not a comma-separated list of positive ints"
                   spec))
        (String.split_on_char ',' spec)

let target_of_params params : Core.Pipeline.target =
  match Option.value (lookup params "target") ~default: "distributed-cpu" with
  | "cpu-sequential" -> Core.Pipeline.Cpu_sequential
  | "cpu-openmp" -> Core.Pipeline.Cpu_openmp { tiles = [ 32; 32; 32 ] }
  | "distributed-cpu" ->
      Core.Pipeline.Distributed_cpu
        {
          ranks = int_param params "ranks" 4;
          strategy = strategy_param params;
          mode = mode_param params;
          tiles = tiles_param params;
          overlap = bool_param params "overlap" true;
        }
  | t ->
      failwith
        (Printf.sprintf
           "unknown target %S (available: cpu-sequential, cpu-openmp, \
            distributed-cpu)" t)

(* Drain a declared [ir=<nbytes>] payload unconditionally, before the
   request is validated in any way (see the framing rule above).  A
   non-numeric byte count is the one unrecoverable case: there is no
   trustworthy length to drain, so the error answer is all we can do. *)
let read_ir_payload ic params : string option =
  match lookup params "ir" with
  | None -> None
  | Some nbytes -> (
      match int_of_string_opt nbytes with
      | Some n when n >= 0 -> Some (really_input_string ic n)
      | _ -> failwith (Printf.sprintf "ir=%S is not a byte count" nbytes))

(* The module spec: demo=<name> | file=<path> | ir=<nbytes> (payload
   already drained from the request channel by [read_ir_payload]). *)
let module_of_params handlers ~payload params : Ir.Op.t =
  match (lookup params "demo", lookup params "file", lookup params "ir") with
  | Some name, None, None -> (
      match handlers.resolve_demo name with
      | Some m -> m
      | None -> failwith (Printf.sprintf "unknown demo %S" name))
  | None, Some path, None -> (
      let text = In_channel.with_open_text path In_channel.input_all in
      try Ir.Parser.parse_string text
      with e ->
        failwith
          (Printf.sprintf "parse error in %S: %s" path (Printexc.to_string e)))
  | None, None, Some _ -> (
      let buf =
        match payload with
        | Some buf -> buf
        | None -> failwith "internal error: ir payload was not drained"
      in
      try Ir.Parser.parse_string buf
      with e ->
        failwith (Printf.sprintf "parse error: %s" (Printexc.to_string e)))
  | None, None, None ->
      failwith "missing module spec (demo=<name> | file=<path> | ir=<nbytes>)"
  | _ -> failwith "ambiguous module spec (give exactly one of demo/file/ir)"

(* ---------- request handling ---------- *)

let compile_artifact handlers ~payload params =
  let m = module_of_params handlers ~payload params in
  let target = target_of_params params in
  let executor =
    Interp.Executor.of_name
      (Option.value (lookup params "exec") ~default: "compiled")
  in
  let queue_s = ref 0. in
  let schedule =
    Option.map
      (fun sch thunk ->
        let art, q = sch thunk in
        queue_s := q;
        art)
      handlers.scheduler
  in
  let art, flag = Artifact.get_cached ~executor ~target ?schedule m in
  (m, art, flag, !queue_s)

let artifact_kvs (art : Artifact.t) flag ~queue_s =
  [
    ("digest", art.Artifact.digest);
    ( "cached",
      match flag with `Hit -> "hit" | `Miss -> "miss" | `Store -> "store" );
    ("compile_ms", Printf.sprintf "%.3f" (art.Artifact.compile_s *. 1000.));
    ("queue_ms", Printf.sprintf "%.3f" (queue_s *. 1000.));
    ("exec", art.Artifact.executor_name);
  ]

let handle_request handlers ic line : (string * string) list =
  let cmd, params = parse_request line in
  (* Drain any declared payload before validating anything, even for
     commands that do not use it — framing first, semantics second. *)
  let payload = read_ir_payload ic params in
  match cmd with
  | "ping" -> [ ("pong", "") ]
  | "stats" ->
      let s = Artifact.stats () in
      [
        ("hits", string_of_int s.Cache.hits);
        ("misses", string_of_int s.Cache.misses);
        ("failed_hits", string_of_int s.Cache.failed_hits);
        ("failures", string_of_int s.Cache.failures);
        ("evictions", string_of_int s.Cache.evictions);
        ("entries", string_of_int (Artifact.cache_length ()));
        ("compile_s", Printf.sprintf "%.6f" s.Cache.compute_s);
      ]
  | "compile" ->
      let _, art, flag, queue_s = compile_artifact handlers ~payload params in
      artifact_kvs art flag ~queue_s
  | "run" -> (
      match handlers.run with
      | None -> failwith "run requests not supported by this server"
      | Some run ->
          let m, art, flag, queue_s =
            compile_artifact handlers ~payload params
          in
          let ranks =
            match art.Artifact.target with
            | Core.Pipeline.Distributed_cpu { ranks; _ } -> ranks
            | _ -> 1
          in
          let substrate =
            match Option.value (lookup params "substrate") ~default: "sim" with
            | ("sim" | "par") as s -> s
            | s -> failwith (Printf.sprintf "unknown substrate %S" s)
          in
          let threads = int_param params "threads" 1 in
          if threads < 1 then
            failwith
              (Printf.sprintf "threads=%d must be positive" threads);
          artifact_kvs art flag ~queue_s @ run m art ~ranks ~substrate ~threads)
  | "" -> []
  | c -> failwith (Printf.sprintf "unknown command %S" c)

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let respond oc kvs =
  let words =
    List.map (fun (k, v) -> if v = "" then k else k ^ "=" ^ v) kvs
  in
  output_string oc (String.concat " " ("ok" :: words) ^ "\n");
  flush oc

let serve_connection ?(handlers = default_handlers) (ic : in_channel)
    (oc : out_channel) : [ `Eof | `Quit | `Shutdown ] =
  let rec loop () =
    match In_channel.input_line ic with
    | None -> `Eof
    | Some line ->
        let line = String.trim line in
        if line = "" || String.length line > 0 && line.[0] = '#' then loop ()
        else if line = "quit" || line = "shutdown" then begin
          (* Best effort: a client that closes without reading the
             farewell must not turn the disposition into an exception —
             a shutdown request has to reach the accept loop even if
             the requester is already gone. *)
          (try
             output_string oc "ok bye\n";
             flush oc
           with Sys_error _ -> ());
          if line = "quit" then `Quit else `Shutdown
        end
        else begin
          (match handle_request handlers ic line with
          | kvs -> respond oc kvs
          | exception e ->
              let msg =
                match e with Failure m -> m | e -> Printexc.to_string e
              in
              output_string oc ("error " ^ one_line msg ^ "\n");
              flush oc);
          loop ()
        end
  in
  loop ()

let serve ?handlers (ic : in_channel) (oc : out_channel) : unit =
  ignore (serve_connection ?handlers ic oc)

(** Digest-keyed on-disk artifact store: persists the canonical source
    rendering, the fully lowered module text and the compile metadata of
    each artifact, so a restarted daemon can skip the pass pipeline and
    re-run only the executor's [compile] step.  One atomic file per digest
    ([<dir>/<digest>.art], temp-file + rename); corrupt or truncated files
    load as [None].  Pure I/O — {!Artifact} owns the digest recipe and
    validates integrity on load. *)

type persisted = {
  p_digest : string;  (** hex content hash, also the filename stem *)
  p_executor : string;  (** executor name the artifact was compiled for *)
  p_target : string;  (** [Core.Pipeline.target_fingerprint] rendering *)
  p_compile_s : float;  (** the original cold-compile seconds *)
  p_canonical : string;  (** canonical rendering of the source module *)
  p_lowered : string;  (** textual rendering of the lowered module *)
  p_lowered_bin : string option;
      (** marshaled lowered module — a restore fast path that skips
          re-parsing [p_lowered].  Only surfaced when the file was
          written by the same runtime (ABI tag match); absent otherwise,
          and the text is always authoritative. *)
}

type t

val create : ?max_bytes:int -> string -> t
(** Open (creating directories as needed) the store rooted at a path.
    [max_bytes] caps the total size of the store's artifact files:
    after every {!save}, artifacts are evicted oldest-first (by mtime,
    never the one just saved) until the store fits, each eviction
    logged loudly to stderr.  Unset = unbounded (the historical
    behavior).  Raises [Invalid_argument] when non-positive. *)

val dir : t -> string

val save : t -> persisted -> unit
(** Persist one artifact atomically; raises [Invalid_argument] on a
    malformed digest and [Sys_error] on I/O failure. *)

val load : t -> digest:string -> persisted option
(** The persisted artifact for a digest, or [None] when absent, corrupt,
    or mislabeled (stored digest must equal the requested one). *)

val list : t -> string list
(** All digests present, sorted. *)

val remove : t -> digest:string -> unit

(* The artifact layer: compilation as a pure function of
   (canonical module, target fingerprint, executor), memoized process-wide.

   Referencing [Exec_compile.executor] below also forces the closure
   compiler's registration into any binary that links the service
   library, so [Interp.Executor.of_name "compiled"] resolves wherever
   artifacts are in use. *)

type t = {
  digest : string;
  target : Core.Pipeline.target;
  executor_name : string;
  lowered : Ir.Op.t;
  program : Interp.Executor.shared;
  compile_s : float;
}

let _force_compiled_registration = Exec_compile.executor

let digest_of ?(executor = Interp.Executor.interpreter)
    ~(target : Core.Pipeline.target) (m : Ir.Op.t) : string =
  let canonical = Ir.Printer.canonical_module_string m in
  let key =
    String.concat "\n"
      [
        Core.Pipeline.target_fingerprint target;
        executor.Interp.Executor.exec_name;
        canonical;
      ]
  in
  Digest.to_hex (Digest.string key)

let compile ?(executor = Interp.Executor.interpreter)
    ~(target : Core.Pipeline.target) (m : Ir.Op.t) : t =
  let t0 = Unix.gettimeofday () in
  let lowered =
    Obs.Trace.with_span ~cat: "service"
      ("pipeline:" ^ Core.Pipeline.target_name target)
      (fun () -> Core.Pipeline.compile target m)
  in
  let program = executor.Interp.Executor.compile lowered in
  {
    digest = digest_of ~executor ~target m;
    target;
    executor_name = executor.Interp.Executor.exec_name;
    lowered;
    program;
    compile_s = Unix.gettimeofday () -. t0;
  }

(* The process-wide artifact cache.  Capacity bounds memory when --serve
   handles many distinct programs; 128 artifacts is far beyond any bench
   or test working set. *)
let cache : t Cache.t = Cache.create ~capacity: 128 "artifact-cache"

let get_cached ?executor ~target m =
  let digest = digest_of ?executor ~target m in
  let art, flag =
    Cache.find_or_compute cache ~key: digest (fun () ->
        compile ?executor ~target m)
  in
  ((if flag = `Hit then { art with compile_s = 0. } else art), flag)

let get ?executor ~target m = fst (get_cached ?executor ~target m)
let stats () = Cache.stats cache
let clear () = Cache.clear cache
let cache_length () = Cache.length cache

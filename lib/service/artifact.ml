(* The artifact layer: compilation as a pure function of
   (canonical module, target fingerprint, executor), memoized process-wide
   and optionally persisted to a digest-keyed on-disk store.

   Referencing [Exec_compile.executor] below also forces the closure
   compiler's registration into any binary that links the service
   library, so [Interp.Executor.of_name "compiled"] resolves wherever
   artifacts are in use. *)

type t = {
  digest : string;
  target : Core.Pipeline.target;
  executor_name : string;
  lowered : Ir.Op.t;
  program : Interp.Executor.shared;
  compile_s : float;
}

let _force_compiled_registration = Exec_compile.executor

(* The hash recipe, shared by the live path (structured module in hand)
   and the store path (canonical text read back from disk). *)
let digest_of_parts ~fingerprint ~executor_name canonical =
  Digest.to_hex
    (Digest.string
       (String.concat "\n" [ fingerprint; executor_name; canonical ]))

let digest_of ?(executor = Interp.Executor.interpreter)
    ~(target : Core.Pipeline.target) (m : Ir.Op.t) : string =
  digest_of_parts
    ~fingerprint: (Core.Pipeline.target_fingerprint target)
    ~executor_name: executor.Interp.Executor.exec_name
    (Ir.Printer.canonical_module_string m)

let compile ?(executor = Interp.Executor.interpreter)
    ~(target : Core.Pipeline.target) (m : Ir.Op.t) : t =
  let t0 = Unix.gettimeofday () in
  let lowered =
    Obs.Trace.with_span ~cat: "service"
      ("pipeline:" ^ Core.Pipeline.target_name target)
      (fun () -> Core.Pipeline.compile target m)
  in
  let program = executor.Interp.Executor.compile lowered in
  {
    digest = digest_of ~executor ~target m;
    target;
    executor_name = executor.Interp.Executor.exec_name;
    lowered;
    program;
    compile_s = Unix.gettimeofday () -. t0;
  }

(* The process-wide artifact cache.  Capacity bounds memory when --serve
   handles many distinct programs; 128 artifacts is far beyond any bench
   or test working set.  LRU by default; [set_policy] switches to FIFO or
   cost-weighted eviction (using each entry's recorded compile seconds). *)
let cache : t Cache.t = Cache.create ~capacity: 128 ~eviction: Cache.Lru "artifact-cache"

let set_policy ?capacity ?eviction () = Cache.set_policy ?capacity ?eviction cache

(* ---------- the on-disk store (optional) ---------- *)

(* Process-wide like the cache; [set_store] installs it (the --serve CLI
   does, tests do, plain one-shot compiles run without).  Guarded by its
   own mutex only for pointer swaps — Store itself is safe to use from
   many domains (atomic writes, read-only loads). *)
let store_lock = Mutex.create ()
let store_ref : Store.t option ref = ref None

let set_store s =
  Mutex.lock store_lock;
  store_ref := s;
  Mutex.unlock store_lock

let store () =
  Mutex.lock store_lock;
  let s = !store_ref in
  Mutex.unlock store_lock;
  s

let persist ~(source : Ir.Op.t) (art : t) =
  match store () with
  | None -> ()
  | Some s -> (
      let p =
        {
          Store.p_digest = art.digest;
          p_executor = art.executor_name;
          p_target = Core.Pipeline.target_fingerprint art.target;
          p_compile_s = art.compile_s;
          p_canonical = Ir.Printer.canonical_module_string source;
          p_lowered = Ir.Printer.module_to_string art.lowered;
          (* Marshal fast path: restoring used to re-parse the lowered
             text, which dominated restore latency; unmarshaling the
             same module is several times cheaper.  The store drops
             these bytes on an ABI mismatch and the text remains. *)
          p_lowered_bin = Some (Marshal.to_string art.lowered []);
        }
      in
      (* Best effort: a full disk must not fail the compile itself. *)
      try Store.save s p with Sys_error _ | Unix.Unix_error _ -> ())

(* Rebuild an artifact from its persisted form: re-parse the lowered
   module and re-run only the executor's [compile] — the pass pipeline is
   skipped entirely.  [compile_s] becomes the restore cost, which is what
   the cache's cost-weighted eviction should protect.  Any integrity or
   parse problem returns [None] and the caller falls back to a full
   compile. *)
let restore_persisted ~(target : Core.Pipeline.target)
    ~(executor : Interp.Executor.t) (p : Store.persisted) : t option =
  let fingerprint = Core.Pipeline.target_fingerprint target in
  let executor_name = executor.Interp.Executor.exec_name in
  if p.Store.p_target <> fingerprint || p.Store.p_executor <> executor_name
  then None
  else if
    digest_of_parts ~fingerprint ~executor_name p.Store.p_canonical
    <> p.Store.p_digest
  then None
  else
    let t0 = Unix.gettimeofday () in
    let unmarshaled =
      (* Same-ABI marshal bytes skip the parse; anything wrong with them
         (truncation, corruption) falls through to the text. *)
      match p.Store.p_lowered_bin with
      | None -> None
      | Some bin -> (
          match (Marshal.from_string bin 0 : Ir.Op.t) with
          | lowered -> Some lowered
          | exception _ -> None)
    in
    let reparsed () =
      match Ir.Parser.parse_string p.Store.p_lowered with
      | lowered -> Some lowered
      | exception _ -> None
    in
    match (match unmarshaled with Some l -> Some l | None -> reparsed ()) with
    | None -> None
    | Some lowered -> (
        match executor.Interp.Executor.compile lowered with
        | exception _ -> None
        | program ->
            Some
              {
                digest = p.Store.p_digest;
                target;
                executor_name;
                lowered;
                program;
                compile_s = Unix.gettimeofday () -. t0;
              })

(* ---------- cached acquisition ---------- *)

let get_cached ?(executor = Interp.Executor.interpreter) ~target ?schedule m =
  let digest = digest_of ~executor ~target m in
  let restored = ref false in
  let compute () =
    let from_store =
      match store () with
      | None -> None
      | Some s ->
          Obs.Trace.with_span ~cat: "service" "store:load" (fun () ->
              Option.bind
                (Store.load s ~digest)
                (restore_persisted ~target ~executor))
    in
    match from_store with
    | Some art ->
        restored := true;
        art
    | None ->
        let cold () =
          let art = compile ~executor ~target m in
          persist ~source: m art;
          art
        in
        (* The scheduler hook (the socket server's batcher) may run the
           cold compile on another domain; store restores stay inline —
           they are cheap and should not queue behind real compiles. *)
        (match schedule with None -> cold () | Some s -> s cold)
  in
  let art, flag = Cache.find_or_compute cache ~key: digest compute in
  let flag =
    match flag with
    | `Hit -> `Hit
    | `Miss -> if !restored then `Store else `Miss
  in
  ((if flag = `Hit then { art with compile_s = 0. } else art), flag)

let get ?executor ~target m = fst (get_cached ?executor ~target m)

(* Warm-start: preload every valid persisted artifact into the cache so a
   restarted daemon answers previously-seen digests without touching the
   pass pipeline.  Artifacts whose target fingerprint cannot be rebuilt
   (or whose executor is unknown here) are skipped, not errors — another
   build may have written them. *)
let warm_start ?limit () : int =
  match store () with
  | None -> 0
  | Some s ->
      let digests = Store.list s in
      let digests =
        match limit with
        | Some n -> List.filteri (fun i _ -> i < n) digests
        | None -> digests
      in
      List.fold_left
        (fun loaded digest ->
          match Store.load s ~digest with
          | None -> loaded
          | Some p -> (
              match
                ( Core.Pipeline.target_of_fingerprint p.Store.p_target,
                  Interp.Executor.of_name_opt p.Store.p_executor )
              with
              | Some target, Some executor -> (
                  (* Restore before touching the cache: a corrupt file
                     must not publish a cached failure for its digest. *)
                  match restore_persisted ~target ~executor p with
                  | None -> loaded
                  | Some art ->
                      ignore
                        (Cache.find_or_compute cache ~key: digest (fun () ->
                             art));
                      loaded + 1)
              | _ -> loaded))
        0 digests

let stats () = Cache.stats cache
let clear () = Cache.clear cache
let cache_length () = Cache.length cache

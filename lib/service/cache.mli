(** Domains-safe memo cache with promise-per-key semantics: concurrent
    requests for the same key block until the single in-flight computation
    finishes, so a value is computed exactly once no matter how many
    domains ask for it at the same time.  Failures are cached too (the
    computation is deterministic) and re-raised to every requester. *)

type 'a t

type stats = {
  hits : int;  (** requests answered from a {!Ready} entry *)
  misses : int;  (** requests that started (or joined) a computation *)
  failures : int;  (** computations that raised *)
  compute_s : float;  (** total seconds spent inside computations *)
}

val create : ?capacity:int -> string -> 'a t
(** A named cache (the name prefixes its Obs counters).  [capacity] bounds
    the number of retained entries; the oldest completed entries are
    evicted first (in-flight entries are never evicted).  Unbounded by
    default. *)

val find_or_compute : 'a t -> key:string -> (unit -> 'a) -> 'a * [ `Hit | `Miss ]
(** The cached value for [key], computing it with the thunk on first
    request.  The thunk runs outside the cache lock; other requesters of
    the same key wait on a condition variable instead of recomputing.
    [`Hit] means the value (or cached failure) was already resident. *)

val stats : 'a t -> stats
val length : 'a t -> int
val clear : 'a t -> unit
(** Drop all completed entries.  Counters keep accumulating (measure with
    {!stats} deltas); in-flight computations are left to finish and
    publish into their intact slots. *)

val name : 'a t -> string

(** Domains-safe memo cache with promise-per-key semantics: concurrent
    requests for the same key block until the single in-flight computation
    finishes, so a value is computed exactly once no matter how many
    domains ask for it at the same time.  Failures are cached too (the
    computation is deterministic) and re-raised to every requester.

    Completed entries sit on an O(1) recency structure; over-capacity
    caches evict by policy ({!eviction}) in O(1) per eviction. *)

type 'a t

type eviction =
  | Fifo  (** insertion order; a hit does not refresh an entry *)
  | Lru  (** least recently used first; hits refresh recency *)
  | Cost_weighted
      (** cheapest-to-recompute first among a small window at the LRU
          end, using each entry's measured compute seconds: recency
          bounds the scan, recompute price picks the victim *)

val eviction_name : eviction -> string
val eviction_of_string : string -> eviction option

type stats = {
  hits : int;  (** requests answered from a {!Ready} entry *)
  misses : int;  (** requests that started a computation *)
  failed_hits : int;
      (** requests answered from a cached {e failure} — kept apart from
          [hits] so repeated lookups of a broken key cannot masquerade as
          a healthy hit rate *)
  failures : int;  (** computations that raised *)
  evictions : int;  (** entries dropped by capacity pressure *)
  compute_s : float;  (** total seconds spent inside computations *)
}

val create : ?capacity:int -> ?eviction:eviction -> string -> 'a t
(** A named cache (the name prefixes its Obs counters).  [capacity] bounds
    the number of retained entries (unbounded by default); over capacity,
    completed entries are evicted by [eviction] (default {!Lru}; in-flight
    entries are never evicted). *)

val set_policy : ?capacity:int -> ?eviction:eviction -> 'a t -> unit
(** Change capacity (<= 0 means unbounded) and/or eviction policy of a
    live cache; evicts immediately if the new capacity is exceeded. *)

val find_or_compute : 'a t -> key:string -> (unit -> 'a) -> 'a * [ `Hit | `Miss ]
(** The cached value for [key], computing it with the thunk on first
    request.  The thunk runs outside the cache lock; other requesters of
    the same key wait on a condition variable instead of recomputing.
    [`Hit] means the value (or cached failure) was already resident. *)

val stats : 'a t -> stats
val length : 'a t -> int
(** Number of completed resident entries; O(1). *)

val clear : 'a t -> unit
(** Drop all completed entries.  Counters keep accumulating (measure with
    {!stats} deltas); in-flight computations are left to finish and
    publish into their intact slots. *)

val name : 'a t -> string

(* The on-disk artifact store: one file per digest holding everything a
   restarted daemon needs to skip the pass pipeline — the canonical source
   rendering (for integrity re-hashing), the fully lowered module text,
   and the metadata that keyed the compilation.  Pure I/O: digests are
   validated by the caller (Artifact), which owns the hash recipe.

   File format (length-framed, so module text needs no quoting):

     stencilc-artifact v2
     digest <hex>
     executor <name>
     target <fingerprint>
     compile_s <float>
     abi <runtime tag>
     canonical <nbytes>
     <nbytes of canonical IR>
     lowered <nbytes>
     <nbytes of lowered-module text>
     lowered_bin <nbytes>
     <nbytes of marshaled lowered module, possibly 0>

   The [lowered_bin] segment is a restore fast path: unmarshaling the
   lowered module is several times cheaper than re-parsing its text, and
   restore latency is the store's whole point.  Marshal bytes are only
   meaningful to the runtime that wrote them, so the segment is keyed by
   the [abi] header — a loader whose own tag differs drops the bytes
   (returns [p_lowered_bin = None]) and the caller re-parses the text,
   which is always present and always authoritative.

   Writes are atomic (temp file + rename), so a crashed or concurrent
   writer can never leave a half-written artifact behind; unreadable or
   malformed files (including v1 files from before the fast path) load
   as [None] and the caller falls back to a full compile. *)

type persisted = {
  p_digest : string;
  p_executor : string;
  p_target : string;  (* Core.Pipeline.target_fingerprint rendering *)
  p_compile_s : float;  (* the original cold-compile seconds *)
  p_canonical : string;
  p_lowered : string;
  p_lowered_bin : string option;  (* Marshal bytes, same-ABI loads only *)
}

(* Marshal bytes survive on disk across rebuilds, but only the writing
   runtime can trust them: the tag pins the OCaml version and the store
   schema generation (bump [schema] whenever the marshaled type's layout
   changes). *)
let schema = 1
let abi_tag = Printf.sprintf "ocaml-%s/schema-%d" Sys.ocaml_version schema

type t = { dir : string; max_bytes : int option }

let dir t = t.dir

let rec mkdir_p path =
  if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?max_bytes dir =
  (match max_bytes with
  | Some b when b <= 0 ->
      invalid_arg "Store.create: max_bytes must be positive"
  | _ -> ());
  mkdir_p dir;
  { dir; max_bytes }

let suffix = ".art"
let path t digest = Filename.concat t.dir (digest ^ suffix)

(* Digests are hex Digest.t strings; refuse anything else so a hostile
   request can never be turned into a path escape. *)
let valid_digest d =
  String.length d = 32
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       d

let list t : string list =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | files ->
      Array.to_list files
      |> List.filter_map (fun f ->
             if Filename.check_suffix f suffix then
               let d = Filename.chop_suffix f suffix in
               if valid_digest d then Some d else None
             else None)
      |> List.sort String.compare

let remove t ~digest =
  if valid_digest digest then
    try Sys.remove (path t digest) with Sys_error _ -> ()

(* Size-cap enforcement: after every save, evict oldest-first (mtime)
   until the store's .art files fit under [max_bytes] again.  The digest
   just written is exempt — a cap smaller than one artifact must not
   evict the artifact it was asked to keep.  Evictions are loud (one
   stderr line each): a daemon silently shedding its warm cache is a
   perf mystery; one that says so is a config knob. *)
let enforce_cap t ~(keep : string) =
  match t.max_bytes with
  | None -> ()
  | Some cap ->
      let entries =
        List.filter_map
          (fun d ->
            match Unix.stat (path t d) with
            | st -> Some (d, st.Unix.st_size, st.Unix.st_mtime)
            | exception Unix.Unix_error _ -> None)
          (list t)
      in
      let total =
        List.fold_left (fun acc (_, sz, _) -> acc + sz) 0 entries
      in
      if total > cap then begin
        let oldest_first =
          List.sort (fun (_, _, a) (_, _, b) -> Float.compare a b) entries
        in
        ignore
          (List.fold_left
             (fun excess (d, sz, _) ->
               if excess <= 0 || d = keep then excess
               else begin
                 remove t ~digest: d;
                 Printf.eprintf
                   "stencilc: store: evicted artifact %s (%d bytes, oldest) \
                    to fit size cap %d bytes\n\
                    %!"
                   d sz cap;
                 excess - sz
               end)
             (total - cap) oldest_first)
      end

let save t (p : persisted) =
  if not (valid_digest p.p_digest) then
    invalid_arg ("Store.save: not a digest: " ^ p.p_digest);
  let final = path t p.p_digest in
  let tmp =
    Filename.concat t.dir
      (Printf.sprintf ".%s.%d.tmp" p.p_digest (Unix.getpid ()))
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally: (fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "stencilc-artifact v2\n";
      Printf.fprintf oc "digest %s\n" p.p_digest;
      Printf.fprintf oc "executor %s\n" p.p_executor;
      Printf.fprintf oc "target %s\n" p.p_target;
      Printf.fprintf oc "compile_s %.9e\n" p.p_compile_s;
      Printf.fprintf oc "abi %s\n" abi_tag;
      Printf.fprintf oc "canonical %d\n" (String.length p.p_canonical);
      output_string oc p.p_canonical;
      Printf.fprintf oc "lowered %d\n" (String.length p.p_lowered);
      output_string oc p.p_lowered;
      let bin = Option.value p.p_lowered_bin ~default: "" in
      Printf.fprintf oc "lowered_bin %d\n" (String.length bin);
      output_string oc bin);
  Sys.rename tmp final;
  enforce_cap t ~keep: p.p_digest

(* One "<keyword> <value>" header line; [None] on any mismatch. *)
let header_value ic keyword =
  match In_channel.input_line ic with
  | None -> None
  | Some line ->
      let prefix = keyword ^ " " in
      let np = String.length prefix in
      if String.length line > np && String.sub line 0 np = prefix then
        Some (String.sub line np (String.length line - np))
      else None

let load t ~digest : persisted option =
  if not (valid_digest digest) then None
  else
    let file = path t digest in
    if not (Sys.file_exists file) then None
    else
      let parse ic =
        let ( let* ) = Option.bind in
        let* magic = In_channel.input_line ic in
        if magic <> "stencilc-artifact v2" then None
        else
          let* p_digest = header_value ic "digest" in
          let* p_executor = header_value ic "executor" in
          let* p_target = header_value ic "target" in
          let* compile_s = header_value ic "compile_s" in
          let* p_compile_s = float_of_string_opt compile_s in
          let* abi = header_value ic "abi" in
          let segment keyword =
            let* n = header_value ic keyword in
            let* n = int_of_string_opt n in
            if n < 0 then None
            else
              match really_input_string ic n with
              | s -> Some s
              | exception End_of_file -> None
          in
          let* p_canonical = segment "canonical" in
          let* p_lowered = segment "lowered" in
          let* bin = segment "lowered_bin" in
          if p_digest <> digest then None
          else
            Some
              {
                p_digest;
                p_executor;
                p_target;
                p_compile_s;
                p_canonical;
                p_lowered;
                (* Foreign-runtime marshal bytes are dropped, not an
                   error: the text is always there to re-parse. *)
                p_lowered_bin =
                  (if abi = abi_tag && bin <> "" then Some bin else None);
              }
      in
      (try In_channel.with_open_bin file parse with Sys_error _ -> None)


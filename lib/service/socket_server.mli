(** Multi-client socket front end for the compile service: a Unix-domain
    (or loopback TCP) listener where every accepted connection runs the
    {!Serve} line protocol in its own domain against the process-wide
    {!Artifact} cache.  The cache's promise-per-key semantics already
    guarantee each distinct digest compiles exactly once no matter how
    many clients race; on top of that, cold compiles from all connections
    are coalesced by a batching scheduler (one worker domain drains
    everything queued at that moment as one traced batch), and each
    response reports its queue latency ([queue_ms]) separately from its
    compile latency ([compile_ms]). *)

type endpoint =
  | Unix_path of string
      (** Unix-domain socket at this path; a stale socket file from a
          dead daemon is replaced, and the file is removed on exit *)
  | Tcp_port of int  (** loopback (127.0.0.1) TCP on this port *)

val endpoint_name : endpoint -> string

type stats = {
  connections : int;  (** connections accepted over the daemon's life *)
  batches : int;  (** batched compile invocations the worker ran *)
  batched_jobs : int;  (** cold compiles that went through the batcher *)
}

val run :
  ?handlers:Serve.handlers ->
  ?max_clients:int ->
  ?on_ready:(unit -> unit) ->
  endpoint ->
  stats
(** Serve until some client sends [shutdown].  Blocking: returns only
    after the listener closed, every connection domain joined and the
    batch worker stopped.  [handlers] supplies demo resolution and the
    run handler exactly as for {!Serve.serve} (its [scheduler] field is
    replaced by the batcher); [max_clients] bounds concurrently live
    connection domains (default 8) — further clients queue in the
    listen backlog; [on_ready] fires once the socket is listening
    (tests use it to know when to connect). *)

(* Promise-per-key memo cache, safe across OCaml 5 domains.

   One mutex guards the table; a requester that misses installs a Pending
   entry, releases the lock, runs the computation, then publishes the
   result and broadcasts.  Requesters that find a Pending entry wait on
   the condition variable — so N concurrent requests for one key cost
   exactly one computation.  Failed computations are published as [Failed]
   (compilation is deterministic: retrying would fail identically) and the
   exception is re-raised to every requester.

   Completed entries live on a recency ring (a sentinel-linked circular
   doubly-linked list, least recently used first) with a mirror table
   from key to ring node, so insert, touch and evict are all O(1) and the
   entry count is a plain integer — the earlier list-based order was
   O(n) per insert and O(n²) per eviction sweep, all under the lock. *)

type 'a entry = Pending | Ready of 'a | Failed of exn

type eviction = Fifo | Lru | Cost_weighted

let eviction_name = function
  | Fifo -> "fifo"
  | Lru -> "lru"
  | Cost_weighted -> "cost"

let eviction_of_string = function
  | "fifo" -> Some Fifo
  | "lru" -> Some Lru
  | "cost" | "cost-weighted" -> Some Cost_weighted
  | _ -> None

(* Ring node for one completed key.  [cost_s] is the measured compute
   time, the recompute price the cost-weighted policy protects. *)
type node = {
  nkey : string;
  mutable cost_s : float;
  mutable prev : node;
  mutable next : node;
}

type 'a t = {
  cache_name : string;
  mutable capacity : int option;
  mutable eviction : eviction;
  lock : Mutex.t;
  changed : Condition.t;
  table : (string, 'a entry) Hashtbl.t;
  nodes : (string, node) Hashtbl.t;  (* completed keys -> ring node *)
  ring : node;  (* sentinel: [ring.next] is the LRU end, [ring.prev] the MRU *)
  mutable count : int;  (* completed entries (= ring length), O(1) *)
  mutable hits : int;
  mutable misses : int;
  mutable failed_hits : int;
  mutable failures : int;
  mutable evictions : int;
  mutable compute_s : float;
}

type stats = {
  hits : int;
  misses : int;
  failed_hits : int;
  failures : int;
  evictions : int;
  compute_s : float;
}

let create ?capacity ?(eviction = Lru) cache_name =
  let rec ring = { nkey = ""; cost_s = 0.; prev = ring; next = ring } in
  {
    cache_name;
    capacity;
    eviction;
    lock = Mutex.create ();
    changed = Condition.create ();
    table = Hashtbl.create 64;
    nodes = Hashtbl.create 64;
    ring;
    count = 0;
    hits = 0;
    misses = 0;
    failed_hits = 0;
    failures = 0;
    evictions = 0;
    compute_s = 0.;
  }

let name c = c.cache_name

let locked c f =
  Mutex.lock c.lock;
  Fun.protect ~finally: (fun () -> Mutex.unlock c.lock) f

(* ---------- recency ring (all under the lock) ---------- *)

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev;
  n.prev <- n;
  n.next <- n

let push_mru c n =
  n.prev <- c.ring.prev;
  n.next <- c.ring;
  c.ring.prev.next <- n;
  c.ring.prev <- n

(* A completed key finished (re)computing: put it at the MRU end. *)
let record_completed c key cost_s =
  match Hashtbl.find_opt c.nodes key with
  | Some n ->
      n.cost_s <- cost_s;
      unlink n;
      push_mru c n
  | None ->
      let rec n = { nkey = key; cost_s; prev = n; next = n } in
      Hashtbl.replace c.nodes key n;
      push_mru c n;
      c.count <- c.count + 1

(* A hit under Lru/Cost_weighted refreshes recency; Fifo ignores use. *)
let touch c key =
  match c.eviction with
  | Fifo -> ()
  | Lru | Cost_weighted -> (
      match Hashtbl.find_opt c.nodes key with
      | Some n ->
          unlink n;
          push_mru c n
      | None -> ())

(* Cost_weighted samples this many nodes from the LRU end and evicts the
   cheapest to recompute among them: recency bounds the scan (O(1)), the
   recorded compute price picks the victim inside the window. *)
let cost_sample = 8

let victim c =
  match c.eviction with
  | Fifo | Lru -> c.ring.next
  | Cost_weighted ->
      (* Never pick the MRU node: it is the entry whose insertion (or
         refresh) triggered this eviction, and sacrificing the newcomer
         for being cheap would bounce every new key straight out.  Over
         capacity means count >= 2, so the LRU end is a valid start. *)
      let newest = c.ring.prev in
      let rec scan best n i =
        if i = 0 || n == c.ring then best
        else
          scan
            (if n != newest && n.cost_s < best.cost_s then n else best)
            n.next (i - 1)
      in
      scan c.ring.next c.ring.next.next (cost_sample - 1)

(* Must hold the lock.  Pending entries have no ring node and are never
   evicted. *)
let evict_over_capacity c =
  match c.capacity with
  | None -> ()
  | Some cap ->
      while c.count > cap && c.ring.next != c.ring do
        let v = victim c in
        unlink v;
        Hashtbl.remove c.nodes v.nkey;
        Hashtbl.remove c.table v.nkey;
        c.count <- c.count - 1;
        c.evictions <- c.evictions + 1
      done

let set_policy ?capacity ?eviction c =
  locked c (fun () ->
      (match capacity with
      | Some cap -> c.capacity <- if cap <= 0 then None else Some cap
      | None -> ());
      (match eviction with Some e -> c.eviction <- e | None -> ());
      evict_over_capacity c)

let emit_counters c =
  if Obs.Trace.enabled () then begin
    Obs.Trace.counter (c.cache_name ^ ".hits") (float_of_int c.hits);
    Obs.Trace.counter (c.cache_name ^ ".misses") (float_of_int c.misses)
  end

let find_or_compute c ~key compute =
  let action =
    locked c (fun () ->
        let rec decide () =
          match Hashtbl.find_opt c.table key with
          | Some (Ready v) ->
              c.hits <- c.hits + 1;
              touch c key;
              `Use (Ready v, `Hit)
          | Some (Failed e) ->
              (* A lookup that lands on a cached failure is NOT a healthy
                 hit: count it apart so a server hammered with a broken
                 module cannot report a clean hit rate. *)
              c.failed_hits <- c.failed_hits + 1;
              touch c key;
              `Use (Failed e, `Hit)
          | Some Pending ->
              (* Join the in-flight computation: wait until its owner
                 publishes, then re-decide — we land on Ready/Failed and
                 count accordingly (no new computation was needed). *)
              Condition.wait c.changed c.lock;
              decide ()
          | None ->
              c.misses <- c.misses + 1;
              Hashtbl.replace c.table key Pending;
              `Compute
        in
        let a = decide () in
        emit_counters c;
        a)
  in
  match action with
  | `Use (Ready v, flag) -> (v, flag)
  | `Use (Failed e, _) -> raise e
  | `Use (Pending, _) -> assert false
  | `Compute ->
      let t0 = Unix.gettimeofday () in
      let outcome =
        match compute () with v -> Ready v | exception e -> Failed e
      in
      let dt = Unix.gettimeofday () -. t0 in
      locked c (fun () ->
          c.compute_s <- c.compute_s +. dt;
          (match outcome with
          | Failed _ -> c.failures <- c.failures + 1
          | _ -> ());
          Hashtbl.replace c.table key outcome;
          record_completed c key dt;
          evict_over_capacity c;
          Condition.broadcast c.changed);
      (match outcome with
      | Ready v -> (v, `Miss)
      | Failed e -> raise e
      | Pending -> assert false)

let stats c =
  locked c (fun () ->
      {
        hits = c.hits;
        misses = c.misses;
        failed_hits = c.failed_hits;
        failures = c.failures;
        evictions = c.evictions;
        compute_s = c.compute_s;
      })

let length c = locked c (fun () -> c.count)

let clear c =
  locked c (fun () ->
      (* Drop completed entries only: a Pending entry's owner will publish
         into the table when it finishes, and must find its slot intact. *)
      Hashtbl.iter (fun key _ -> Hashtbl.remove c.table key) c.nodes;
      Hashtbl.reset c.nodes;
      c.ring.prev <- c.ring;
      c.ring.next <- c.ring;
      c.count <- 0)

(* Promise-per-key memo cache, safe across OCaml 5 domains.

   One mutex guards the table; a requester that misses installs a Pending
   entry, releases the lock, runs the computation, then publishes the
   result and broadcasts.  Requesters that find a Pending entry wait on
   the condition variable — so N concurrent requests for one key cost
   exactly one computation.  Failed computations are published as [Failed]
   (compilation is deterministic: retrying would fail identically) and the
   exception is re-raised to every requester. *)

type 'a entry = Pending | Ready of 'a | Failed of exn

type 'a t = {
  cache_name : string;
  capacity : int option;
  lock : Mutex.t;
  changed : Condition.t;
  table : (string, 'a entry) Hashtbl.t;
  mutable order : string list;  (* completed keys, oldest first *)
  mutable hits : int;
  mutable misses : int;
  mutable failures : int;
  mutable compute_s : float;
}

type stats = {
  hits : int;
  misses : int;
  failures : int;
  compute_s : float;
}

let create ?capacity cache_name =
  {
    cache_name;
    capacity;
    lock = Mutex.create ();
    changed = Condition.create ();
    table = Hashtbl.create 64;
    order = [];
    hits = 0;
    misses = 0;
    failures = 0;
    compute_s = 0.;
  }

let name c = c.cache_name

let locked c f =
  Mutex.lock c.lock;
  Fun.protect ~finally: (fun () -> Mutex.unlock c.lock) f

(* Must hold the lock.  Evict oldest completed entries over capacity;
   Pending entries are not in [order] and are never evicted. *)
let evict_over_capacity c =
  match c.capacity with
  | None -> ()
  | Some cap ->
      while List.length c.order > cap do
        match c.order with
        | oldest :: rest ->
            Hashtbl.remove c.table oldest;
            c.order <- rest
        | [] -> ()
      done

let emit_counters c =
  if Obs.Trace.enabled () then begin
    Obs.Trace.counter (c.cache_name ^ ".hits") (float_of_int c.hits);
    Obs.Trace.counter (c.cache_name ^ ".misses") (float_of_int c.misses)
  end

let find_or_compute c ~key compute =
  let action =
    locked c (fun () ->
        let rec decide () =
          match Hashtbl.find_opt c.table key with
          | Some (Ready v) ->
              c.hits <- c.hits + 1;
              `Use (Ready v, `Hit)
          | Some (Failed e) ->
              c.hits <- c.hits + 1;
              `Use (Failed e, `Hit)
          | Some Pending ->
              (* Join the in-flight computation: wait until its owner
                 publishes, then re-decide — we land on Ready/Failed and
                 count as a hit (no new computation was needed). *)
              Condition.wait c.changed c.lock;
              decide ()
          | None ->
              c.misses <- c.misses + 1;
              Hashtbl.replace c.table key Pending;
              `Compute
        in
        let a = decide () in
        emit_counters c;
        a)
  in
  match action with
  | `Use (Ready v, flag) -> (v, flag)
  | `Use (Failed e, _) -> raise e
  | `Use (Pending, _) -> assert false
  | `Compute ->
      let t0 = Unix.gettimeofday () in
      let outcome =
        match compute () with v -> Ready v | exception e -> Failed e
      in
      let dt = Unix.gettimeofday () -. t0 in
      locked c (fun () ->
          c.compute_s <- c.compute_s +. dt;
          (match outcome with
          | Failed _ -> c.failures <- c.failures + 1
          | _ -> ());
          Hashtbl.replace c.table key outcome;
          c.order <- c.order @ [ key ];
          evict_over_capacity c;
          Condition.broadcast c.changed);
      (match outcome with
      | Ready v -> (v, `Miss)
      | Failed e -> raise e
      | Pending -> assert false)

let stats c =
  locked c (fun () ->
      {
        hits = c.hits;
        misses = c.misses;
        failures = c.failures;
        compute_s = c.compute_s;
      })

let length c = locked c (fun () -> List.length c.order)

let clear c =
  locked c (fun () ->
      (* Drop completed entries only: a Pending entry's owner will publish
         into the table when it finishes, and must find its slot intact. *)
      List.iter (Hashtbl.remove c.table) c.order;
      c.order <- [])

(** The compile service behind [stencilc --serve]: a newline-delimited
    request/response protocol over arbitrary channels (a pipe, a socket,
    stdin/stdout), answering compile and run requests from the
    process-wide {!Artifact} cache.

    Requests are single lines [cmd key=value ...]:

    - [ping] → [ok pong]
    - [stats] → [ok hits=... misses=... failed_hits=... failures=...
      evictions=... entries=... compile_s=...]
    - [compile <module> <target>] → [ok digest=<hex>
      cached=hit|miss|store compile_ms=<ms> queue_ms=<ms> exec=<name>]
      ([cached=store] means the artifact was restored from the on-disk
      store, skipping the pass pipeline; [queue_ms] is time spent queued
      behind the batching scheduler before the compile started, 0 when
      answered directly)
    - [run <module> <target> substrate=sim|par] → compile (cached) then
      execute via the installed run handler; its key/value results are
      appended to the [ok] line
    - [quit] → [ok bye], and this connection's loop returns
    - [shutdown] → [ok bye]; additionally asks the enclosing socket
      server (if any) to stop accepting connections

    Module spec (exactly one): [demo=<name>] (resolved by the injected
    demo resolver), [file=<path>] (textual IR on disk), or [ir=<nbytes>]
    (that many bytes of textual IR follow the request line verbatim).
    A declared [ir=] payload is always drained from the channel before
    the request is validated, so a malformed request cannot leave its
    payload behind to be misparsed as the next request.
    Target spec: [target=<cpu-sequential|cpu-openmp|distributed-cpu>]
    (default distributed-cpu) with [ranks=<n>] (default 4),
    [strategy=<slice1d|slice2d|slice3d>] (default slice2d),
    [overlap=<bool>] (default true), [tile=<t1,t2,...>] (cache-block
    sizes for the tiled omp lowering; default untiled; part of the
    artifact digest) and [exec=<executor>] (default compiled).  [run]
    additionally takes [threads=<n>] (threads per rank for the compiled
    executor's domain pool; default 1; a runtime knob, not part of the
    digest).  Failures answer [error <message>] and the loop
    continues. *)

type run_handler =
  Ir.Op.t ->
  Artifact.t ->
  ranks:int ->
  substrate:string ->
  threads:int ->
  (string * string) list
(** Executes a compiled artifact and returns response key/values (e.g.
    [max_diff], [wall_ms]).  Receives the source module as well — the
    CLI's handler runs it serially as the correctness oracle.  Injected
    by the CLI so the service library stays below the driver in the
    dependency order. *)

type compile_scheduler = (unit -> Artifact.t) -> Artifact.t * float
(** Runs (or enqueues) one cold compile and returns the artifact plus the
    seconds it spent queued before the compile started.  The socket
    server installs its batching scheduler here; [None] compiles inline
    with zero queue time. *)

type handlers = {
  resolve_demo : string -> Ir.Op.t option;
      (** named built-in programs ([demo=heat2d], ...) *)
  run : run_handler option;  (** [None] rejects [run] requests *)
  scheduler : compile_scheduler option;
      (** cold-compile scheduler; [None] compiles inline *)
}

val default_handlers : handlers
(** No demos, no run handler, inline compiles: a pure compile server. *)

val handle_request :
  handlers -> in_channel -> string -> (string * string) list
(** Process one request line (draining any [ir=<nbytes>] payload from the
    channel before validation) and return response key/values; raises on
    malformed or failing requests.  Exposed for tests. *)

val serve_connection :
  ?handlers:handlers -> in_channel -> out_channel -> [ `Eof | `Quit | `Shutdown ]
(** Serve requests from one connection until EOF, [quit] or [shutdown],
    writing one response line per request, and report which of the three
    ended the loop (the socket server turns [`Shutdown] into a full
    daemon stop). *)

val serve : ?handlers:handlers -> in_channel -> out_channel -> unit
(** {!serve_connection}, discarding the disposition — the stdin/stdout
    single-client mode, where [quit] and [shutdown] are equivalent. *)

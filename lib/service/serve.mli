(** The compile service behind [stencilc --serve]: a newline-delimited
    request/response protocol over arbitrary channels (a pipe, a socket,
    stdin/stdout), answering compile and run requests from the
    process-wide {!Artifact} cache.

    Requests are single lines [cmd key=value ...]:

    - [ping] → [ok pong]
    - [stats] → [ok hits=... misses=... entries=... compile_s=...]
    - [compile <module> <target>] → [ok digest=<hex> cached=hit|miss
      compile_ms=<ms> exec=<name>]
    - [run <module> <target> substrate=sim|par] → compile (cached) then
      execute via the installed run handler; its key/value results are
      appended to the [ok] line
    - [quit] → [ok bye], and the server loop returns

    Module spec (exactly one): [demo=<name>] (resolved by the injected
    demo resolver), [file=<path>] (textual IR on disk), or [ir=<nbytes>]
    (that many bytes of textual IR follow the request line verbatim).
    Target spec: [target=<cpu-sequential|cpu-openmp|distributed-cpu>]
    (default distributed-cpu) with [ranks=<n>] (default 4),
    [strategy=<slice1d|slice2d|slice3d>] (default slice2d),
    [overlap=<bool>] (default true) and [exec=<executor>] (default
    compiled).  Failures answer [error <message>] and the loop
    continues. *)

type run_handler =
  Ir.Op.t -> Artifact.t -> ranks:int -> substrate:string -> (string * string) list
(** Executes a compiled artifact and returns response key/values (e.g.
    [max_diff], [wall_ms]).  Receives the source module as well — the
    CLI's handler runs it serially as the correctness oracle.  Injected
    by the CLI so the service library stays below the driver in the
    dependency order. *)

type handlers = {
  resolve_demo : string -> Ir.Op.t option;
      (** named built-in programs ([demo=heat2d], ...) *)
  run : run_handler option;  (** [None] rejects [run] requests *)
}

val default_handlers : handlers
(** No demos, no run handler: a pure compile server. *)

val handle_request :
  handlers -> in_channel -> string -> (string * string) list
(** Process one request line (reading any [ir=<nbytes>] payload from the
    channel) and return response key/values; raises on malformed or
    failing requests.  Exposed for tests. *)

val serve : ?handlers:handlers -> in_channel -> out_channel -> unit
(** Serve requests from the input channel until [quit] or EOF, writing
    one response line per request. *)

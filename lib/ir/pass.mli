(** Pass management: named module transformations composed into pipelines. *)

type t = { name : string; run : Op.t -> Op.t }

val make : string -> (Op.t -> Op.t) -> t

val of_patterns : string -> Pattern.pattern list -> t
(** A pass running a greedy pattern set to fixpoint through the shared
    {!Rewriter} core (worklist driver unless the session default was
    changed). *)

type pipeline = { pipeline_name : string; passes : t list }

val pipeline : string -> t list -> pipeline

val run_pipeline :
  ?verify:bool ->
  ?checks:Verifier.check list ->
  ?print_after:bool ->
  pipeline ->
  Op.t ->
  Op.t
(** Run each pass in order.  [verify] re-checks the module after every pass;
    [print_after] dumps the IR after every pass through {!Obs.Report},
    labeled with the pass and pipeline names.  When the {!Obs} sink is
    installed, every pass additionally records a trace span and an
    {!Obs.pass_stat} (wall time, verifier time, op-count and IR-size
    deltas, rewrite-pattern application counts). *)

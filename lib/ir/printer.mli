(** Textual output in MLIR's generic-operation style; everything printed here
    round-trips through {!Parser}. *)

val pp_op : ?indent:int -> Format.formatter -> Op.t -> unit
val op_to_string : Op.t -> string
val print_module : Format.formatter -> Op.t -> unit
val module_to_string : Op.t -> string

val canonical_module_string : Op.t -> string
(** Deterministic rendering for content-addressing (not for parsing): SSA
    values renumbered in definition order and attribute dictionaries
    sorted by key, so the result is identical for structurally identical
    modules regardless of value-id allocation history or attribute
    insertion order.  [Digest.string] of this string is the canonical
    module digest used by the artifact cache. *)

(* Textual output in MLIR's generic-operation style.  Printer and parser are
   designed together: everything printed here round-trips through Parser. *)

let pp_attr_dict fmt attrs =
  if attrs <> [] then begin
    Format.fprintf fmt " {";
    List.iteri
      (fun i (k, a) ->
        if i > 0 then Format.fprintf fmt ", ";
        Format.fprintf fmt "%s = %a" k Typesys.pp_attr a)
      attrs;
    Format.fprintf fmt "}"
  end

let rec pp_op ?(indent = 0) fmt (op : Op.t) =
  let pad = String.make indent ' ' in
  Format.fprintf fmt "%s" pad;
  if op.results <> [] then begin
    List.iteri
      (fun i v ->
        if i > 0 then Format.fprintf fmt ", ";
        Value.pp fmt v)
      op.results;
    Format.fprintf fmt " = "
  end;
  Format.fprintf fmt "%S(" op.name;
  List.iteri
    (fun i v ->
      if i > 0 then Format.fprintf fmt ", ";
      Value.pp fmt v)
    op.operands;
  Format.fprintf fmt ")";
  pp_attr_dict fmt op.attrs;
  if op.regions <> [] then begin
    Format.fprintf fmt " (";
    List.iteri
      (fun i r ->
        if i > 0 then Format.fprintf fmt ", ";
        pp_region ~indent fmt r)
      op.regions;
    Format.fprintf fmt ")"
  end;
  Format.fprintf fmt " : (%a) -> (%a)" Typesys.pp_ty_list
    (List.map Value.ty op.operands)
    Typesys.pp_ty_list
    (List.map Value.ty op.results)

and pp_region ~indent fmt (r : Op.region) =
  Format.fprintf fmt "{\n";
  List.iter (pp_block ~indent: (indent + 2) fmt) r.blocks;
  Format.fprintf fmt "%s}" (String.make indent ' ')

and pp_block ~indent fmt (b : Op.block) =
  Format.fprintf fmt "%s^(" (String.make (indent - 1) ' ');
  List.iteri
    (fun i v ->
      if i > 0 then Format.fprintf fmt ", ";
      Value.pp_typed fmt v)
    b.args;
  Format.fprintf fmt "):\n";
  List.iter (fun op -> Format.fprintf fmt "%a\n" (pp_op ~indent) op) b.ops

let op_to_string op = Format.asprintf "%a" (pp_op ~indent: 0) op

let print_module fmt m =
  Format.fprintf fmt "%a@." (pp_op ~indent: 0) m

let module_to_string m = Format.asprintf "%a" print_module m

(* ---------- canonical form (content hashing) ---------- *)

(* A deterministic rendering of a module meant for content-addressing, not
   for round-tripping: SSA values are renumbered locally (definition
   order, starting at %0) so two structurally identical modules built at
   different times — or re-parsed, which allocates fresh ids — print
   identically, and attribute dictionaries are sorted by key so the hash
   is insensitive to attribute insertion order (the same normalization the
   CSE op-key uses since the PR 2 attr-order fix). *)

let canonical_module_string (m : Op.t) : string =
  let buf = Buffer.create 4096 in
  let ids : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let next = ref 0 in
  let vid (v : Value.t) : int =
    match Hashtbl.find_opt ids (Value.id v) with
    | Some n -> n
    | None ->
        let n = !next in
        incr next;
        Hashtbl.add ids (Value.id v) n;
        n
  in
  let add_ty t = Buffer.add_string buf (Format.asprintf "%a" Typesys.pp_ty t) in
  let add_value v =
    Buffer.add_char buf '%';
    Buffer.add_string buf (string_of_int (vid v))
  in
  let add_typed_value v =
    add_value v;
    Buffer.add_char buf ':';
    add_ty (Value.ty v)
  in
  let rec add_op (op : Op.t) =
    List.iter
      (fun r ->
        add_value r;
        Buffer.add_char buf ' ')
      op.Op.results;
    Buffer.add_char buf '=';
    Buffer.add_string buf op.Op.name;
    Buffer.add_char buf '(';
    List.iter
      (fun v ->
        add_typed_value v;
        Buffer.add_char buf ',')
      op.Op.operands;
    Buffer.add_char buf ')';
    (match
       List.sort (fun (a, _) (b, _) -> String.compare a b) op.Op.attrs
     with
    | [] -> ()
    | attrs ->
        Buffer.add_char buf '{';
        List.iter
          (fun (k, a) ->
            Buffer.add_string buf k;
            Buffer.add_char buf '=';
            Buffer.add_string buf (Format.asprintf "%a" Typesys.pp_attr a);
            Buffer.add_char buf ',')
          attrs;
        Buffer.add_char buf '}');
    List.iter
      (fun (r : Op.region) ->
        Buffer.add_char buf '(';
        List.iter
          (fun (b : Op.block) ->
            Buffer.add_char buf '^';
            List.iter
              (fun a ->
                add_typed_value a;
                Buffer.add_char buf ',')
              b.Op.args;
            Buffer.add_char buf ':';
            List.iter add_op b.Op.ops)
          r.Op.blocks;
        Buffer.add_char buf ')')
      op.Op.regions;
    List.iter
      (fun r ->
        Buffer.add_char buf ':';
        add_ty (Value.ty r))
      op.Op.results;
    Buffer.add_char buf '\n'
  in
  add_op m;
  Buffer.contents buf

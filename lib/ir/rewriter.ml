(* The shared rewrite core: an indexed, mutable view of a module (the
   workspace) plus two greedy pattern drivers built on top of it.

   The workspace decomposes the immutable [Op.t] tree into node and block
   tables addressed by integer ids, with per-[Value] use-def indices
   (defining node / block argument, user nodes with operand counts) and a
   doubly-linked op order per block.  Mutations ([replace_op], [erase_op],
   [replace_all_uses], [insert_before/after], [move_before]) keep the
   indices consistent incrementally, so a driver can re-examine only the
   users of changed values instead of re-sweeping the whole module.

   Two drivers share the workspace, the pattern representation and the
   per-root-op pattern index:

   - [Worklist] (the default): MLIR-style greedy rewriting.  All ops are
     seeded in reverse post-order on a LIFO worklist; applying a rewrite
     re-enqueues the replacement ops, the users of remapped values and
     the ancestor ops, and ops that become trivially dead (per the
     driver's [dead] predicate) are erased on the spot.

   - [Sweep]: full-module sweeps to fixpoint, kept for A/B comparison
     (`stencilc --rewrite-driver=sweep`, `bench/main.exe ablation`).

   Hitting the iteration budget of either driver emits a warning through
   Logs and an Obs instant event naming the pass and the last applied
   pattern instead of silently returning a non-converged module. *)

let log_src = Logs.Src.create "ir.rewriter" ~doc: "Shared rewrite core"

module Log = (val Logs.src_log log_src)

module Workspace = struct
  type node_id = int
  type block_id = int

  type def_site = Def_op of node_id | Def_arg of block_id

  type wblock = {
    blk_id : block_id;
    owner : node_id;
    mutable bargs : Value.t list;
    mutable bfirst : node_id; (* -1 when the block is empty *)
    mutable blast : node_id;
  }

  type wnode = {
    nid : node_id;
    src : Op.t; (* the original op record this node was imported from *)
    mutable shallow : Op.t; (* current op with [regions = []] *)
    mutable wregions : wblock list list;
    mutable parent : block_id; (* -1 for the root *)
    mutable prev : node_id;
    mutable next : node_id;
    mutable erased : bool;
    mutable queued : bool; (* worklist membership flag (driver-owned) *)
  }

  type t = {
    mutable next_nid : int;
    mutable next_bid : int;
    nodes : (node_id, wnode) Hashtbl.t;
    blks : (block_id, wblock) Hashtbl.t;
    defs : (int, def_site) Hashtbl.t; (* Value.id -> defining site *)
    uses : (int, (node_id, int) Hashtbl.t) Hashtbl.t;
        (* Value.id -> user node -> operand count *)
    mutable root_id : node_id;
  }

  let node ws nid =
    match Hashtbl.find_opt ws.nodes nid with
    | Some n -> n
    | None -> invalid_arg (Printf.sprintf "Rewriter.Workspace: unknown op #%d" nid)

  let blk ws bid =
    match Hashtbl.find_opt ws.blks bid with
    | Some b -> b
    | None ->
        invalid_arg (Printf.sprintf "Rewriter.Workspace: unknown block #%d" bid)

  let root ws = ws.root_id
  let is_erased ws nid = (node ws nid).erased

  (* --- use/def index maintenance --- *)

  let add_use ws v nid =
    let key = Value.id v in
    let tbl =
      match Hashtbl.find_opt ws.uses key with
      | Some t -> t
      | None ->
          let t = Hashtbl.create 4 in
          Hashtbl.replace ws.uses key t;
          t
    in
    let n = match Hashtbl.find_opt tbl nid with Some n -> n | None -> 0 in
    Hashtbl.replace tbl nid (n + 1)

  let remove_use ws v nid =
    let key = Value.id v in
    match Hashtbl.find_opt ws.uses key with
    | None -> ()
    | Some tbl -> (
        match Hashtbl.find_opt tbl nid with
        | None -> ()
        | Some 1 -> Hashtbl.remove tbl nid
        | Some n -> Hashtbl.replace tbl nid (n - 1))

  let use_count ws v =
    match Hashtbl.find_opt ws.uses (Value.id v) with
    | None -> 0
    | Some tbl -> Hashtbl.fold (fun _ n acc -> acc + n) tbl 0

  let users ws v =
    match Hashtbl.find_opt ws.uses (Value.id v) with
    | None -> []
    | Some tbl ->
        Hashtbl.fold
          (fun nid _ acc -> if (node ws nid).erased then acc else nid :: acc)
          tbl []
        |> List.sort compare

  let def_site ws v =
    match Hashtbl.find_opt ws.defs (Value.id v) with
    | Some (Def_op nid) when not (node ws nid).erased -> `Op nid
    | Some (Def_arg bid) -> `Arg bid
    | _ -> `None

  (* --- linked-list order within a block --- *)

  let link_last ws wb nid =
    let n = node ws nid in
    n.prev <- wb.blast;
    n.next <- -1;
    if wb.blast >= 0 then (node ws wb.blast).next <- nid else wb.bfirst <- nid;
    wb.blast <- nid

  let link_before ws wb ~anchor nid =
    let a = node ws anchor in
    let n = node ws nid in
    n.prev <- a.prev;
    n.next <- anchor;
    if a.prev >= 0 then (node ws a.prev).next <- nid else wb.bfirst <- nid;
    a.prev <- nid

  let link_after ws wb ~anchor nid =
    let a = node ws anchor in
    let n = node ws nid in
    n.prev <- anchor;
    n.next <- a.next;
    if a.next >= 0 then (node ws a.next).prev <- nid else wb.blast <- nid;
    a.next <- nid

  let unlink ws nid =
    let n = node ws nid in
    if n.parent >= 0 then begin
      let wb = blk ws n.parent in
      if n.prev >= 0 then (node ws n.prev).next <- n.next
      else wb.bfirst <- n.next;
      if n.next >= 0 then (node ws n.next).prev <- n.prev
      else wb.blast <- n.prev;
      n.prev <- -1;
      n.next <- -1
    end

  let block_ops ws bid =
    let wb = blk ws bid in
    let rec go acc nid =
      if nid < 0 then List.rev acc else go (nid :: acc) (node ws nid).next
    in
    go [] wb.bfirst

  (* --- import --- *)

  let rec import_op ws ~parent (op : Op.t) : node_id =
    let nid = ws.next_nid in
    ws.next_nid <- nid + 1;
    let n =
      {
        nid;
        src = op;
        shallow = (if op.Op.regions = [] then op else { op with Op.regions = [] });
        wregions = [];
        parent;
        prev = -1;
        next = -1;
        erased = false;
        queued = false;
      }
    in
    Hashtbl.replace ws.nodes nid n;
    n.wregions <-
      List.map
        (fun (r : Op.region) -> List.map (import_block ws ~owner: nid) r.Op.blocks)
        op.Op.regions;
    List.iter
      (fun v -> Hashtbl.replace ws.defs (Value.id v) (Def_op nid))
      op.Op.results;
    List.iter (fun v -> add_use ws v nid) op.Op.operands;
    nid

  and import_block ws ~owner (b : Op.block) : wblock =
    let bid = ws.next_bid in
    ws.next_bid <- bid + 1;
    let wb = { blk_id = bid; owner; bargs = b.Op.args; bfirst = -1; blast = -1 } in
    Hashtbl.replace ws.blks bid wb;
    List.iter
      (fun a -> Hashtbl.replace ws.defs (Value.id a) (Def_arg bid))
      b.Op.args;
    List.iter
      (fun op ->
        let nid = import_op ws ~parent: bid op in
        link_last ws wb nid)
      b.Op.ops;
    wb

  let of_op (m : Op.t) : t =
    let ws =
      {
        next_nid = 0;
        next_bid = 0;
        nodes = Hashtbl.create 256;
        blks = Hashtbl.create 32;
        defs = Hashtbl.create 256;
        uses = Hashtbl.create 256;
        root_id = -1;
      }
    in
    ws.root_id <- import_op ws ~parent: (-1) m;
    ws

  (* --- materialization --- *)

  let rec materialize ws nid : Op.t =
    let n = node ws nid in
    if n.wregions = [] then n.shallow
    else
      {
        n.shallow with
        Op.regions =
          List.map
            (fun wbs ->
              { Op.blocks = List.map (materialize_block ws) wbs })
            n.wregions;
      }

  and materialize_block ws wb : Op.block =
    {
      Op.args = wb.bargs;
      ops = List.map (materialize ws) (block_ops ws wb.blk_id);
    }

  let op = materialize
  let to_op ws = materialize ws ws.root_id

  (* --- structure queries --- *)

  let shallow ws nid = (node ws nid).shallow
  let src ws nid = (node ws nid).src
  let has_regions ws nid = (node ws nid).wregions <> []

  let blocks ws nid =
    List.map (List.map (fun wb -> wb.blk_id)) (node ws nid).wregions

  let block_args ws bid = (blk ws bid).bargs
  let block_owner ws bid = (blk ws bid).owner

  let parent_block ws nid =
    let n = node ws nid in
    if n.parent < 0 then None else Some n.parent

  let parent_op ws nid =
    match parent_block ws nid with
    | None -> None
    | Some bid -> Some (blk ws bid).owner

  let rec in_subtree ws ~top nid =
    nid = top
    || (match parent_op ws nid with
       | Some p -> in_subtree ws ~top p
       | None -> false)

  let block_in_subtree ws ~top bid = in_subtree ws ~top (blk ws bid).owner

  let ancestors ws nid =
    let rec go acc nid =
      match parent_op ws nid with
      | Some p when p <> ws.root_id -> go (p :: acc) p
      | _ -> acc
    in
    go [] nid

  (* Live ops in post order (children before parents, program order
     otherwise); the root is excluded. *)
  let post_order ws =
    let acc = ref [] in
    let rec go nid =
      let n = node ws nid in
      List.iter
        (fun wbs ->
          List.iter
            (fun wb -> List.iter go (block_ops ws wb.blk_id))
            wbs)
        n.wregions;
      if nid <> ws.root_id then acc := nid :: !acc
    in
    go ws.root_id;
    List.rev !acc

  let subtree_post_order ws top =
    let acc = ref [] in
    let rec go nid =
      let n = node ws nid in
      List.iter
        (fun wbs ->
          List.iter
            (fun wb -> List.iter go (block_ops ws wb.blk_id))
            wbs)
        n.wregions;
      acc := nid :: !acc
    in
    go top;
    List.rev !acc

  (* --- mutation --- *)

  let set_shallow ws nid (op : Op.t) =
    let n = node ws nid in
    List.iter (fun v -> remove_use ws v nid) n.shallow.Op.operands;
    List.iter
      (fun v ->
        match Hashtbl.find_opt ws.defs (Value.id v) with
        | Some (Def_op d) when d = nid -> Hashtbl.remove ws.defs (Value.id v)
        | _ -> ())
      n.shallow.Op.results;
    n.shallow <- (if op.Op.regions = [] then op else { op with Op.regions = [] });
    List.iter
      (fun v -> Hashtbl.replace ws.defs (Value.id v) (Def_op nid))
      op.Op.results;
    List.iter (fun v -> add_use ws v nid) op.Op.operands

  let set_block_args ws bid args =
    let wb = blk ws bid in
    List.iter
      (fun v ->
        match Hashtbl.find_opt ws.defs (Value.id v) with
        | Some (Def_arg d) when d = bid -> Hashtbl.remove ws.defs (Value.id v)
        | _ -> ())
      wb.bargs;
    wb.bargs <- args;
    List.iter
      (fun a -> Hashtbl.replace ws.defs (Value.id a) (Def_arg bid))
      args

  let insert_before ws ~anchor (op : Op.t) : node_id =
    let a = node ws anchor in
    if a.parent < 0 then
      invalid_arg "Rewriter.Workspace.insert_before: anchor is the root";
    let nid = import_op ws ~parent: a.parent op in
    link_before ws (blk ws a.parent) ~anchor nid;
    nid

  let insert_after ws ~anchor (op : Op.t) : node_id =
    let a = node ws anchor in
    if a.parent < 0 then
      invalid_arg "Rewriter.Workspace.insert_after: anchor is the root";
    let nid = import_op ws ~parent: a.parent op in
    link_after ws (blk ws a.parent) ~anchor nid;
    nid

  let append ws bid (op : Op.t) : node_id =
    let wb = blk ws bid in
    let nid = import_op ws ~parent: bid op in
    link_last ws wb nid;
    nid

  let move_before ws ~anchor nid =
    let a = node ws anchor in
    if a.parent < 0 then
      invalid_arg "Rewriter.Workspace.move_before: anchor is the root";
    unlink ws nid;
    (node ws nid).parent <- a.parent;
    link_before ws (blk ws a.parent) ~anchor nid

  (* Redirect every use of [old_v] to [new_v]; returns the affected user
     nodes (for driver re-enqueueing). *)
  let replace_all_uses ws old_v new_v : node_id list =
    if Value.equal old_v new_v then []
    else
      let affected = users ws old_v in
      List.iter
        (fun nid ->
          let n = node ws nid in
          let operands =
            List.map
              (fun v ->
                if Value.equal v old_v then begin
                  remove_use ws v nid;
                  add_use ws new_v nid;
                  new_v
                end
                else v)
              n.shallow.Op.operands
          in
          n.shallow <- { n.shallow with Op.operands })
        affected;
      affected

  (* Erase an op (and everything nested inside it); returns the values the
     erased subtree was using that are defined elsewhere — candidates for
     becoming trivially dead. *)
  let erase_op ws nid : Value.t list =
    unlink ws nid;
    let released = ref [] in
    let rec erase_tree nid =
      let n = node ws nid in
      n.erased <- true;
      List.iter
        (fun v ->
          remove_use ws v nid;
          released := v :: !released)
        n.shallow.Op.operands;
      List.iter
        (fun v ->
          match Hashtbl.find_opt ws.defs (Value.id v) with
          | Some (Def_op d) when d = nid -> Hashtbl.remove ws.defs (Value.id v)
          | _ -> ())
        n.shallow.Op.results;
      List.iter
        (fun wbs ->
          List.iter
            (fun wb ->
              List.iter
                (fun a ->
                  match Hashtbl.find_opt ws.defs (Value.id a) with
                  | Some (Def_arg d) when d = wb.blk_id ->
                      Hashtbl.remove ws.defs (Value.id a)
                  | _ -> ())
                wb.bargs;
              List.iter erase_tree (block_ops ws wb.blk_id);
              Hashtbl.remove ws.blks wb.blk_id)
            wbs)
        n.wregions
    in
    erase_tree nid;
    (* Values defined within the erased subtree are gone from [defs], so
       they no longer qualify as dead-op candidates. *)
    List.filter (fun v -> def_site ws v <> `None) !released

  (* Splice [new_ops] in front of [nid], remap [mapping] (old result ->
     replacement value), erase [nid].  Returns the inserted top-level
     nodes, the user nodes affected by the remapping, and the values the
     erased op released. *)
  let replace_op ws nid new_ops mapping =
    let inserted = List.map (fun op -> insert_before ws ~anchor: nid op) new_ops in
    let affected =
      List.concat_map
        (fun (old_v, new_v) -> replace_all_uses ws old_v new_v)
        mapping
    in
    let released = erase_op ws nid in
    (inserted, affected, released)

  let def_op ws v =
    match def_site ws v with `Op nid -> Some (op ws nid) | _ -> None
end

(* --- patterns --- *)

type ctx = {
  ws : Workspace.t;
  def : Value.t -> Op.t option;
  uses : Value.t -> int;
}

type pattern = {
  pname : string;
  roots : string list;
  rewrite : ctx -> Op.t -> Pattern.rewrite option;
}

let pattern ?(roots = []) pname rewrite = { pname; roots; rewrite }

let of_legacy (p : Pattern.pattern) =
  { pname = p.Pattern.pname; roots = []; rewrite = (fun _ op -> p.Pattern.apply op) }

(* --- driver selection --- *)

type driver = Worklist | Sweep

let driver_to_string = function Worklist -> "worklist" | Sweep -> "sweep"

let driver_of_string = function
  | "worklist" -> Some Worklist
  | "sweep" -> Some Sweep
  | _ -> None

let default = ref Worklist
let set_default_driver d = default := d
let default_driver () = !default

(* --- pattern index: patterns tried per root op name, in list order --- *)

type index = {
  by_root : (string, (int * pattern) list) Hashtbl.t;
  generic : (int * pattern) list; (* patterns with no declared roots *)
  resolved : (string, pattern list) Hashtbl.t;
}

let index_patterns patterns =
  let by_root = Hashtbl.create 16 in
  let generic = ref [] in
  List.iteri
    (fun i p ->
      if p.roots = [] then generic := (i, p) :: !generic
      else
        List.iter
          (fun root ->
            let prev =
              match Hashtbl.find_opt by_root root with Some l -> l | None -> []
            in
            Hashtbl.replace by_root root ((i, p) :: prev))
          p.roots)
    patterns;
  { by_root; generic = List.rev !generic; resolved = Hashtbl.create 16 }

let candidates idx name =
  match Hashtbl.find_opt idx.resolved name with
  | Some ps -> ps
  | None ->
      let rooted =
        match Hashtbl.find_opt idx.by_root name with
        | Some l -> List.rev l
        | None -> []
      in
      let ps =
        List.merge
          (fun (a, _) (b, _) -> compare (a : int) b)
          rooted idx.generic
        |> List.map snd
      in
      Hashtbl.replace idx.resolved name ps;
      ps

(* --- shared driver pieces --- *)

type counters = {
  mutable enqueued : int;
  mutable processed : int;
  mutable max_depth : int;
  mutable applied : int;
  mutable erased_dead : int;
  mutable sweeps : int;
}

(* An op the driver may erase on its own: regionless (the workspace's
   shallow ops drop regions, so region-bearing nodes must never reach the
   effect predicates), matching the pass's [dead] predicate, with no
   remaining uses of any result. *)
let dead_candidate ws dead nid =
  (not (Workspace.has_regions ws nid))
  && dead (Workspace.shallow ws nid)
  &&
  let op = Workspace.shallow ws nid in
  List.for_all (fun r -> Workspace.use_count ws r = 0) op.Op.results

let rec try_candidates ctx op = function
  | [] -> None
  | p :: rest -> (
      match p.rewrite ctx op with
      | None -> try_candidates ctx op rest
      | Some rw -> Some (p, rw))

(* Materializing a node (rebuilding its region subtree as an [Op.t]) is
   the expensive step of a visit, so both drivers consult the pattern
   index on the cheap shallow record first and only materialize ops that
   have at least one candidate pattern. *)
let try_patterns ctx idx nid =
  match candidates idx (Workspace.shallow ctx.ws nid).Op.name with
  | [] -> None
  | cands -> try_candidates ctx (Workspace.op ctx.ws nid) cands

let warn_non_convergence ~name ~driver ~budget ~last_pattern =
  Log.warn (fun f ->
      f
        "pass %s: %s driver hit its budget (%d) without converging; last \
         applied pattern: %s"
        name (driver_to_string driver) budget
        (if last_pattern = "" then "<none>" else last_pattern));
  Obs.Trace.instant ~cat: "rewrite"
    ~args:
      [
        ("pass", Obs.Str name);
        ("driver", Obs.Str (driver_to_string driver));
        ("budget", Obs.Int budget);
        ("last_pattern", Obs.Str last_pattern);
      ]
    "rewrite-non-convergence"

(* --- the worklist driver --- *)

let run_worklist ws ~name ~dead idx (c : counters) =
  let ctx =
    {
      ws;
      def = (fun v -> Workspace.def_op ws v);
      uses = (fun v -> Workspace.use_count ws v);
    }
  in
  let stack = ref [] in
  let depth = ref 0 in
  let push nid =
    if nid <> Workspace.root ws then begin
      let n = Workspace.node ws nid in
      if (not n.Workspace.erased) && not n.Workspace.queued then begin
        n.Workspace.queued <- true;
        stack := nid :: !stack;
        incr depth;
        c.enqueued <- c.enqueued + 1;
        if !depth > c.max_depth then c.max_depth <- !depth
      end
    end
  in
  (* Seed in reverse post order: pops then follow program order with
     nested ops visited before their parents, like the legacy sweep.
     Ops with no candidate pattern for their name and no chance of
     driver-side erasure are not seeded at all — visiting them would be a
     no-op, and any later mutation that could make them interesting
     re-enqueues them (affected users, ancestors, released defs). *)
  let initial = Workspace.post_order ws in
  List.iter
    (fun nid ->
      if
        candidates idx (Workspace.shallow ws nid).Op.name <> []
        || dead_candidate ws dead nid
      then push nid)
    (List.rev initial);
  let budget = 100 * max 64 (List.length initial) in
  let push_dead_candidates released =
    List.iter
      (fun v ->
        if Workspace.use_count ws v = 0 then
          match Workspace.def_site ws v with `Op d -> push d | _ -> ())
      released
  in
  let last_pattern = ref "" in
  let process nid =
    if dead_candidate ws dead nid then begin
      let ancestors = Workspace.ancestors ws nid in
      let released = Workspace.erase_op ws nid in
      c.erased_dead <- c.erased_dead + 1;
      List.iter push ancestors;
      push_dead_candidates released
    end
    else
      match try_patterns ctx idx nid with
      | None -> ()
      | Some (p, rw) -> (
          Obs.Patterns.note p.pname;
          c.applied <- c.applied + 1;
          last_pattern := p.pname;
          let ancestors = Workspace.ancestors ws nid in
          match rw with
          | Pattern.Erase ->
              let released = Workspace.erase_op ws nid in
              List.iter push ancestors;
              push_dead_candidates released
          | Pattern.Replace (ops, mapping) ->
              let inserted, affected, released =
                Workspace.replace_op ws nid ops mapping
              in
              List.iter
                (fun top ->
                  (* Reversed so pops visit the new subtree children
                     first, in program order. *)
                  List.iter push
                    (List.rev (Workspace.subtree_post_order ws top)))
                inserted;
              List.iter push affected;
              List.iter push ancestors;
              push_dead_candidates released)
  in
  let exhausted = ref false in
  let rec loop () =
    match !stack with
    | [] -> ()
    | nid :: rest ->
        stack := rest;
        decr depth;
        let n = Workspace.node ws nid in
        n.Workspace.queued <- false;
        if n.Workspace.erased then loop ()
        else begin
          c.processed <- c.processed + 1;
          if c.processed > budget then exhausted := true
          else begin
            process nid;
            loop ()
          end
        end
  in
  loop ();
  if !exhausted then
    warn_non_convergence ~name ~driver: Worklist ~budget
      ~last_pattern: !last_pattern

(* --- the legacy-style sweep driver on the workspace --- *)

let max_sweeps = 100

let run_sweep ws ~name ~dead idx (c : counters) =
  let ctx =
    {
      ws;
      def = (fun v -> Workspace.def_op ws v);
      uses = (fun v -> Workspace.use_count ws v);
    }
  in
  let last_pattern = ref "" in
  let rec sweep i =
    c.sweeps <- i + 1;
    let changed = ref false in
    List.iter
      (fun nid ->
        if not (Workspace.is_erased ws nid) then begin
          c.processed <- c.processed + 1;
          if dead_candidate ws dead nid then begin
            ignore (Workspace.erase_op ws nid);
            c.erased_dead <- c.erased_dead + 1;
            changed := true
          end
          else
            match try_patterns ctx idx nid with
            | None -> ()
            | Some (p, rw) ->
                Obs.Patterns.note p.pname;
                c.applied <- c.applied + 1;
                last_pattern := p.pname;
                changed := true;
                (match rw with
                | Pattern.Erase -> ignore (Workspace.erase_op ws nid)
                | Pattern.Replace (ops, mapping) ->
                    ignore (Workspace.replace_op ws nid ops mapping))
        end)
      (Workspace.post_order ws);
    if !changed then
      if i + 1 >= max_sweeps then
        warn_non_convergence ~name ~driver: Sweep ~budget: max_sweeps
          ~last_pattern: !last_pattern
      else sweep (i + 1)
  in
  sweep 0

let run ?driver ?(dead = fun _ -> false) ~name patterns (m : Op.t) : Op.t =
  let driver = match driver with Some d -> d | None -> !default in
  let ws = Workspace.of_op m in
  let idx = index_patterns patterns in
  let c =
    {
      enqueued = 0;
      processed = 0;
      max_depth = 0;
      applied = 0;
      erased_dead = 0;
      sweeps = 0;
    }
  in
  (match driver with
  | Worklist -> run_worklist ws ~name ~dead idx c
  | Sweep -> run_sweep ws ~name ~dead idx c);
  if Obs.enabled () then
    Obs.Rewrites.record
      {
        Obs.rw_pass = name;
        rw_driver = driver_to_string driver;
        rw_enqueued = c.enqueued;
        rw_processed = c.processed;
        rw_max_depth = c.max_depth;
        rw_applied = c.applied;
        rw_erased_dead = c.erased_dead;
        rw_sweeps = c.sweeps;
      };
  Workspace.to_op ws

(* Cascading erasure of ops matching [removable] whose results are all
   unused — DCE as one workspace walk.  Returns the number of erased
   ops. *)
let erase_dead ?(removable = fun _ -> false) ws : int =
  let count = ref 0 in
  let stack = ref (List.rev (Workspace.post_order ws)) in
  let rec loop () =
    match !stack with
    | [] -> ()
    | nid :: rest ->
        stack := rest;
        if
          (not (Workspace.is_erased ws nid))
          && dead_candidate ws removable nid
        then begin
          let released = Workspace.erase_op ws nid in
          incr count;
          List.iter
            (fun v ->
              if Workspace.use_count ws v = 0 then
                match Workspace.def_site ws v with
                | `Op d -> stack := d :: !stack
                | _ -> ())
            released
        end;
        loop ()
  in
  loop ();
  !count

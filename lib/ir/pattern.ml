(* Rewrite patterns and the legacy greedy sweep driver.  A pattern inspects
   one op and can replace it with a list of new ops together with a mapping
   from the old results to values produced by the replacement; the driver
   splices the new ops in and substitutes subsequent uses.  Sweeps repeat
   until fixpoint.

   New code should go through Rewriter (the indexed worklist core);
   [run_on_module] is kept as the compatibility sweep implementation and as
   the semantic baseline the Rewriter is property-tested against. *)

let log_src = Logs.Src.create "ir.pattern" ~doc: "Legacy sweep rewrite driver"

module Log = (val Logs.src_log log_src)

type rewrite =
  | Replace of Op.t list * (Value.t * Value.t) list
  | Erase

type pattern = { pname : string; apply : Op.t -> rewrite option }

let pattern pname apply = { pname; apply }

(* Replace an op by new ops whose final op redefines the same results. *)
let replace_with ops mapping = Some (Replace (ops, mapping))

let max_sweeps = 100

let rewrite_block changed last_pattern patterns (b : Op.block) : Op.block =
  let rec rewrite_op op =
    (* Bottom-up: rewrite nested regions first. *)
    let op =
      if op.Op.regions = [] then op
      else
        {
          op with
          Op.regions =
            List.map
              (fun (r : Op.region) ->
                { Op.blocks = List.map rewrite_region_block r.Op.blocks })
              op.Op.regions;
        }
    in
    let rec try_patterns = function
      | [] -> ([ op ], [])
      | p :: rest -> (
          match p.apply op with
          | None -> try_patterns rest
          | Some Erase ->
              changed := true;
              last_pattern := p.pname;
              Obs.Patterns.note p.pname;
              ([], [])
          | Some (Replace (ops, mapping)) ->
              changed := true;
              last_pattern := p.pname;
              Obs.Patterns.note p.pname;
              (ops, mapping))
    in
    try_patterns patterns
  and rewrite_region_block (b : Op.block) : Op.block =
    let subst = ref Value.Map.empty in
    let rev_ops =
      List.fold_left
        (fun acc op ->
          let op = Op.substitute !subst op in
          let new_ops, mapping = rewrite_op op in
          List.iter
            (fun (old_v, new_v) -> subst := Value.Map.add old_v new_v !subst)
            mapping;
          List.rev_append new_ops acc)
        [] b.Op.ops
    in
    { b with Op.ops = List.rev rev_ops }
  in
  rewrite_region_block b

let run_on_module patterns (m : Op.t) : Op.t =
  let last_pattern = ref "" in
  let rec sweep n m =
    if n >= max_sweeps then begin
      (* A sweep at the cap still changed the module: the pattern set does
         not converge.  Say so instead of returning quietly. *)
      Log.warn (fun f ->
          f
            "legacy sweep driver hit max_sweeps (%d) without converging; \
             last applied pattern: %s"
            max_sweeps
            (if !last_pattern = "" then "<none>" else !last_pattern));
      Obs.Trace.instant ~cat: "rewrite"
        ~args:
          [
            ("driver", Obs.Str "legacy-sweep");
            ("budget", Obs.Int max_sweeps);
            ("last_pattern", Obs.Str !last_pattern);
          ]
        "rewrite-non-convergence";
      m
    end
    else begin
      let changed = ref false in
      let m' =
        {
          m with
          Op.regions =
            List.map
              (fun (r : Op.region) ->
                { Op.blocks =
                    List.map
                      (rewrite_block changed last_pattern patterns)
                      r.Op.blocks;
                })
              m.Op.regions;
        }
      in
      if !changed then sweep (n + 1) m' else m'
    end
  in
  sweep 0 m

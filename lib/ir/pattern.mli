(** Rewrite patterns and a greedy fixpoint driver, in the style of MLIR's
    pattern rewriting infrastructure. *)

(** Outcome of a successful match on one op. *)
type rewrite =
  | Replace of Op.t list * (Value.t * Value.t) list
      (** Replacement ops, plus a map from each old result that remains used
          to the value now producing it. *)
  | Erase
      (** Remove the op.  Only valid when its results have no remaining
          uses; the pattern is responsible for that invariant. *)

type pattern = { pname : string; apply : Op.t -> rewrite option }
(** [pname] also labels the per-pattern application counters the greedy
    driver feeds into {!Obs.Patterns} when the Obs sink is installed. *)

val pattern : string -> (Op.t -> rewrite option) -> pattern

val replace_with : Op.t list -> (Value.t * Value.t) list -> rewrite option

val run_on_module : pattern list -> Op.t -> Op.t
(** Apply the patterns greedily, bottom-up, sweeping until fixpoint (bounded
    number of sweeps, warning through [Logs]/{!Obs} when the bound is hit).
    This is the legacy sweep driver, kept as a compatibility shim and as the
    baseline the {!Rewriter} worklist driver is property-tested against;
    pass construction should go through [Pass.of_patterns], which uses the
    shared {!Rewriter} core. *)

(* Pass management: named module-to-module transformations composed into
   pipelines, with optional verification, print-after-all debugging, and
   Obs-backed per-pass metrics (wall time, verifier time, op-count and
   IR-size deltas, rewrite-pattern application counts). *)

type t = { name : string; run : Op.t -> Op.t }

let make name run = { name; run }

(* Pattern passes run through the shared Rewriter core, under whichever
   driver is the session default (worklist unless overridden). *)
let of_patterns name patterns =
  {
    name;
    run =
      (fun m ->
        Rewriter.run ~name (List.map Rewriter.of_legacy patterns) m);
  }

type pipeline = { pipeline_name : string; passes : t list }

let pipeline pipeline_name passes = { pipeline_name; passes }

let log_src = Logs.Src.create "ir.pass" ~doc: "Pass manager"

module Log = (val Logs.src_log log_src)

let ir_bytes m = String.length (Printer.module_to_string m)

(* One instrumented pass application.  All measurement is gated on the Obs
   sink being installed; with the sink absent this reduces to running the
   pass and the optional verifier. *)
let run_pass ~pipeline_name ~verify ~checks ~print_after (pass : t)
    (m : Op.t) : Op.t =
  Log.debug (fun f -> f "running pass %s" pass.name);
  let profiling = Obs.enabled () in
  let ops_before = if profiling then Op.count_ops m else 0 in
  let bytes_before = if profiling then ir_bytes m else 0 in
  let patterns_before = if profiling then Obs.Patterns.counts () else [] in
  Obs.Trace.begin_span ~cat: "pass"
    ~args: [ ("pipeline", Obs.Str pipeline_name) ]
    pass.name;
  let t0 = if profiling then Obs.now () else 0. in
  let m' = pass.run m in
  let t1 = if profiling then Obs.now () else 0. in
  if print_after then
    Obs.Report.ir_dump ~pipeline: pipeline_name ~pass: pass.name (fun fmt ->
        Printer.print_module fmt m');
  let verify_s =
    if verify then begin
      let tv0 = if profiling then Obs.now () else 0. in
      Obs.Trace.with_span ~cat: "verify" ("verify:" ^ pass.name) (fun () ->
          Verifier.verify ~checks m');
      if profiling then Obs.now () -. tv0 else 0.
    end
    else 0.
  in
  Obs.Trace.end_span pass.name;
  if profiling then
    Obs.Passes.record
      {
        Obs.pipeline = pipeline_name;
        pass_name = pass.name;
        wall_s = t1 -. t0;
        verify_s;
        ops_before;
        ops_after = Op.count_ops m';
        ir_bytes_before = bytes_before;
        ir_bytes_after = ir_bytes m';
        pattern_apps = Obs.Patterns.diff patterns_before;
      };
  m'

let run_pipeline ?(verify = false) ?(checks = []) ?(print_after = false)
    (p : pipeline) (m : Op.t) : Op.t =
  Obs.Trace.with_span ~cat: "pipeline" ("pipeline:" ^ p.pipeline_name)
    (fun () ->
      List.fold_left
        (fun m pass ->
          run_pass ~pipeline_name: p.pipeline_name ~verify ~checks
            ~print_after pass m)
        m p.passes)

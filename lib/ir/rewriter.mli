(** The shared rewrite core: an indexed module workspace with use-def
    tracking plus the greedy pattern drivers built on it.

    The workspace gives passes an op-by-id, mutable view of a module —
    per-value defining sites and user counts, doubly-linked op order per
    block — with a small mutation API that keeps the indices consistent.
    Two drivers share it: the default worklist driver re-enqueues only
    the users of changed values, and the legacy-style sweep driver
    re-visits the whole module until fixpoint (kept for A/B via
    [stencilc --rewrite-driver=sweep] and the ablation bench). *)

module Workspace : sig
  type t

  type node_id = int
  (** Ops are addressed by dense integer ids assigned at import. *)

  type block_id = int

  val of_op : Op.t -> t
  (** Index a module (or any op tree) into a fresh workspace. *)

  val to_op : t -> Op.t
  (** Materialize the current state back into an immutable op tree. *)

  val root : t -> node_id

  val op : t -> node_id -> Op.t
  (** The op at [node_id], with its regions materialized. *)

  val shallow : t -> node_id -> Op.t
  (** The op at [node_id] with [regions = []]; cheap, and the form to
      feed to predicates that must not see stale region contents.  Never
      pass a shallow op of a region-bearing node to effect
      classification — check {!has_regions} first. *)

  val src : t -> node_id -> Op.t
  (** The original op record this node was imported from (physical
      identity is preserved, for passes that key state on it).  Stale
      with respect to later workspace mutations. *)

  val has_regions : t -> node_id -> bool
  val blocks : t -> node_id -> block_id list list
  val block_args : t -> block_id -> Value.t list
  val set_block_args : t -> block_id -> Value.t list -> unit
  val block_ops : t -> block_id -> node_id list
  val block_owner : t -> block_id -> node_id
  val parent_block : t -> node_id -> block_id option
  val parent_op : t -> node_id -> node_id option
  val is_erased : t -> node_id -> bool

  val use_count : t -> Value.t -> int
  (** Number of operand uses of a value across the whole workspace. *)

  val users : t -> Value.t -> node_id list
  (** Live nodes using the value as a direct operand, sorted by id. *)

  val def_site : t -> Value.t -> [ `Op of node_id | `Arg of block_id | `None ]

  val def_op : t -> Value.t -> Op.t option
  (** The materialized defining op of a value, if it is an op result. *)

  val in_subtree : t -> top:node_id -> node_id -> bool
  (** Is [top] the node itself or one of its ancestors? *)

  val block_in_subtree : t -> top:node_id -> block_id -> bool
  val ancestors : t -> node_id -> node_id list
  (** Proper ancestors, outermost first, excluding the root. *)

  val post_order : t -> node_id list
  (** Live ops, children before parents, program order otherwise; the
      root is excluded.  A fresh snapshot on every call. *)

  val subtree_post_order : t -> node_id -> node_id list

  val insert_before : t -> anchor:node_id -> Op.t -> node_id
  val insert_after : t -> anchor:node_id -> Op.t -> node_id
  val append : t -> block_id -> Op.t -> node_id
  val move_before : t -> anchor:node_id -> node_id -> unit

  val set_shallow : t -> node_id -> Op.t -> unit
  (** Swap the node's own name/operands/results/attrs (the argument's
      regions are ignored; nested blocks are kept as they are). *)

  val replace_all_uses : t -> Value.t -> Value.t -> node_id list
  (** Redirect every use; returns the affected user nodes. *)

  val erase_op : t -> node_id -> Value.t list
  (** Erase the op and everything nested in it.  Returns the values the
      erased subtree used that are defined elsewhere (candidates for
      becoming trivially dead). *)

  val replace_op :
    t -> node_id -> Op.t list -> (Value.t * Value.t) list ->
    node_id list * node_id list * Value.t list
  (** [replace_op ws n ops mapping] splices [ops] before [n], remaps each
      [(old_result, new_value)] pair, and erases [n]; returns (inserted
      top-level nodes, users affected by the remapping, released
      values). *)
end

type ctx = {
  ws : Workspace.t;
  def : Value.t -> Op.t option;
      (** Defining op of a value, anywhere in the module — this is what
          lets canonicalization fold over operand-defining constants
          without a per-block environment. *)
  uses : Value.t -> int;  (** Current use count of a value. *)
}
(** The read-side context handed to patterns. *)

type pattern = {
  pname : string;
  roots : string list;
      (** Op names the pattern can match; [[]] means try on every op.
          The drivers dispatch through a per-root index, so rooted
          patterns are only tried where they can fire. *)
  rewrite : ctx -> Op.t -> Pattern.rewrite option;
}

val pattern :
  ?roots:string list -> string -> (ctx -> Op.t -> Pattern.rewrite option) ->
  pattern

val of_legacy : Pattern.pattern -> pattern
(** Wrap a context-free legacy pattern (no declared roots, so it is
    tried on every op, as under the old sweep driver). *)

type driver = Worklist | Sweep

val driver_to_string : driver -> string
val driver_of_string : string -> driver option

val set_default_driver : driver -> unit
(** Select the driver used when {!run} is not given one explicitly
    (initially [Worklist]); [stencilc --rewrite-driver] sets this. *)

val default_driver : unit -> driver

val run :
  ?driver:driver -> ?dead:(Op.t -> bool) -> name:string -> pattern list ->
  Op.t -> Op.t
(** Apply the patterns greedily until fixpoint under the selected driver.
    [dead] marks regionless ops the driver may erase on its own once all
    their results are unused (typically {!Transforms.Effects}'
    [removable_if_unused]), which folds trivial DCE into the rewrite.
    Applications are counted through {!Obs.Patterns}; worklist/sweep
    counters are recorded through {!Obs.Rewrites}; hitting the iteration
    budget warns through [Logs] and an Obs instant event instead of
    failing. *)

val erase_dead : ?removable:(Op.t -> bool) -> Workspace.t -> int
(** Cascading erasure of [removable] ops whose results are all unused
    (DCE as one workspace walk); returns the number of erased ops. *)

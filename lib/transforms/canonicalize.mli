(** Canonicalization: constant propagation and folding plus algebraic
    identities (x+0, x*1, select on constants, ...) for the arith dialect,
    as context-aware patterns on the shared {!Ir.Rewriter} core.  The
    driver's dead-op folding erases the constants stranded by folding, so
    no separate DCE sweep is needed. *)

val eval_int_binop : string -> int -> int -> int option
val eval_float_binop : string -> float -> float -> float option

val patterns : Ir.Rewriter.pattern list
(** The canonicalization pattern set (exposed for driver A/B tests). *)

val run : ?driver:Ir.Rewriter.driver -> Ir.Op.t -> Ir.Op.t
val pass : Ir.Pass.t

(** Dead code elimination: remove side-effect-free ops whose results are
    never used, as one cascading erasure walk on the shared
    {!Ir.Rewriter} workspace.  [max_iters] is accepted for compatibility
    and ignored: the use-count cascade needs no fixpoint iteration. *)

val run : ?max_iters:int -> Ir.Op.t -> Ir.Op.t
val pass : Ir.Pass.t

(** Common sub-expression elimination: pure ops keyed by (name, operands,
    attributes — sorted by key, since attr order is not semantic); later
    duplicates in scope reuse the earlier results.  Scoping follows region
    nesting; runs on the shared {!Ir.Rewriter} workspace. *)

type key = string * int list * (string * Ir.Typesys.attr) list

val key_of : Ir.Op.t -> key
(** The CSE key of an op, with attributes canonically sorted. *)

val run : Ir.Op.t -> Ir.Op.t
val pass : Ir.Pass.t

(** Loop-invariant code motion: hoist hoistable ops whose operands are
    defined outside the loop body in front of scf.for / scf.parallel /
    gpu.launch loops, using the shared {!Ir.Rewriter} workspace's use-def
    index.  The mpi lowering relies on this to hoist rank queries and
    communication buffers out of time loops (paper §4.3). *)

val run : Ir.Op.t -> Ir.Op.t
val pass : Ir.Pass.t

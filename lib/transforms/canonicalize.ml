(* Canonicalization: constant folding and algebraic identities for the arith
   dialect, as context-aware rewrite patterns on the shared Rewriter core.

   Patterns look up each operand's defining constant through the rewriter
   context's use-def index, so folding needs no per-block constant
   environment: replacing an op re-enqueues its users, and a user whose
   operands have just become constants folds when it is re-visited.  The
   driver's [dead] predicate erases the constants (and other pure ops) that
   folding strands, which replaces the old trailing DCE sweep. *)

open Ir
open Dialects

let const_int_op v ty =
  let r = Value.fresh ty in
  ( Op.make Arith.constant ~results: [ r ]
      ~attrs: [ ("value", Typesys.Int_attr (v, ty)) ],
    r )

let const_float_op v ty =
  let r = Value.fresh ty in
  ( Op.make Arith.constant ~results: [ r ]
      ~attrs: [ ("value", Typesys.Float_attr (v, ty)) ],
    r )

let eval_int_binop name a b =
  match name with
  | "arith.addi" -> Some (a + b)
  | "arith.subi" -> Some (a - b)
  | "arith.muli" -> Some (a * b)
  | "arith.divsi" -> if b = 0 then None else Some (a / b)
  | "arith.remsi" -> if b = 0 then None else Some (a mod b)
  | "arith.andi" -> Some (a land b)
  | "arith.ori" -> Some (a lor b)
  | "arith.xori" -> Some (a lxor b)
  | _ -> None

let eval_float_binop name a b =
  match name with
  | "arith.addf" -> Some (a +. b)
  | "arith.subf" -> Some (a -. b)
  | "arith.mulf" -> Some (a *. b)
  | "arith.divf" -> Some (a /. b)
  | "arith.maximumf" -> Some (Float.max a b)
  | "arith.minimumf" -> Some (Float.min a b)
  | _ -> None

let eval_cmp pred a b =
  let open Arith in
  match pred with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

type const_value = Cint of int | Cfloat of float

(* The constant defining [v], if its defining op is an arith.constant. *)
let const_of (ctx : Rewriter.ctx) v =
  match ctx.Rewriter.def v with
  | Some op when op.Op.name = Arith.constant -> (
      match Op.attr op "value" with
      | Some (Typesys.Int_attr (i, _)) -> Some (Cint i)
      | Some (Typesys.Float_attr (f, _)) -> Some (Cfloat f)
      | _ -> None)
  | _ -> None

let forward old_v new_v = Pattern.replace_with [] [ (old_v, new_v) ]

let fold_int_binop =
  Rewriter.pattern ~roots: Arith.int_binops "fold-int-binop"
    (fun ctx op ->
      match (op.Op.operands, op.Op.results) with
      | [ a; b ], [ r ] -> (
          match (const_of ctx a, const_of ctx b) with
          | Some (Cint va), Some (Cint vb) -> (
              match eval_int_binop op.Op.name va vb with
              | Some v ->
                  let cop, nr = const_int_op v (Value.ty r) in
                  Pattern.replace_with [ cop ] [ (r, nr) ]
              | None -> None)
          | _ -> None)
      | _ -> None)

let fold_float_binop =
  Rewriter.pattern ~roots: Arith.float_binops "fold-float-binop"
    (fun ctx op ->
      match (op.Op.operands, op.Op.results) with
      | [ a; b ], [ r ] -> (
          match (const_of ctx a, const_of ctx b) with
          | Some (Cfloat va), Some (Cfloat vb) -> (
              match eval_float_binop op.Op.name va vb with
              | Some v ->
                  let cop, nr = const_float_op v (Value.ty r) in
                  Pattern.replace_with [ cop ] [ (r, nr) ]
              | None -> None)
          | _ -> None)
      | _ -> None)

let fold_negf =
  Rewriter.pattern ~roots: [ "arith.negf" ] "fold-negf" (fun ctx op ->
      match (op.Op.operands, op.Op.results) with
      | [ a ], [ r ] -> (
          match const_of ctx a with
          | Some (Cfloat va) ->
              let cop, nr = const_float_op (-.va) (Value.ty r) in
              Pattern.replace_with [ cop ] [ (r, nr) ]
          | _ -> None)
      | _ -> None)

let fold_cmpi =
  Rewriter.pattern ~roots: [ "arith.cmpi" ] "fold-cmpi" (fun ctx op ->
      match (op.Op.operands, op.Op.results) with
      | [ a; b ], [ r ] -> (
          match (const_of ctx a, const_of ctx b) with
          | Some (Cint va), Some (Cint vb) ->
              let pred =
                Arith.predicate_of_string (Op.string_attr_exn op "predicate")
              in
              let v = if eval_cmp pred va vb then 1 else 0 in
              let cop, nr = const_int_op v Typesys.i1 in
              Pattern.replace_with [ cop ] [ (r, nr) ]
          | _ -> None)
      | _ -> None)

let fold_index_cast =
  Rewriter.pattern ~roots: [ "arith.index_cast" ] "fold-index-cast"
    (fun ctx op ->
      match (op.Op.operands, op.Op.results) with
      | [ a ], [ r ] -> (
          match const_of ctx a with
          | Some (Cint va) ->
              let cop, nr = const_int_op va (Value.ty r) in
              Pattern.replace_with [ cop ] [ (r, nr) ]
          | _ -> None)
      | _ -> None)

let fold_sitofp =
  Rewriter.pattern ~roots: [ "arith.sitofp" ] "fold-sitofp" (fun ctx op ->
      match (op.Op.operands, op.Op.results) with
      | [ a ], [ r ] -> (
          match const_of ctx a with
          | Some (Cint va) ->
              let v = float_of_int va in
              let cop, nr = const_float_op v (Value.ty r) in
              Pattern.replace_with [ cop ] [ (r, nr) ]
          | _ -> None)
      | _ -> None)

(* Algebraic identities with one constant side: the result is forwarded to
   an existing value, no replacement op is needed. *)
let float_identities =
  Rewriter.pattern
    ~roots: [ "arith.addf"; "arith.subf"; "arith.mulf"; "arith.divf" ]
    "float-identity"
    (fun ctx op ->
      match (op.Op.operands, op.Op.results) with
      | [ a; b ], [ r ] -> (
          let ca = const_of ctx a and cb = const_of ctx b in
          match (op.Op.name, ca, cb) with
          | "arith.addf", _, Some (Cfloat 0.) -> forward r a
          | "arith.addf", Some (Cfloat 0.), _ -> forward r b
          | "arith.subf", _, Some (Cfloat 0.) -> forward r a
          | "arith.mulf", _, Some (Cfloat 1.) -> forward r a
          | "arith.mulf", Some (Cfloat 1.), _ -> forward r b
          | "arith.divf", _, Some (Cfloat 1.) -> forward r a
          | _ -> None)
      | _ -> None)

let int_identities =
  Rewriter.pattern
    ~roots: [ "arith.addi"; "arith.subi"; "arith.muli" ]
    "int-identity"
    (fun ctx op ->
      match (op.Op.operands, op.Op.results) with
      | [ a; b ], [ r ] -> (
          let ca = const_of ctx a and cb = const_of ctx b in
          match (op.Op.name, ca, cb) with
          | "arith.addi", _, Some (Cint 0) -> forward r a
          | "arith.addi", Some (Cint 0), _ -> forward r b
          | "arith.subi", _, Some (Cint 0) -> forward r a
          | "arith.muli", _, Some (Cint 1) -> forward r a
          | "arith.muli", Some (Cint 1), _ -> forward r b
          | _ -> None)
      | _ -> None)

let select_identity =
  Rewriter.pattern ~roots: [ "arith.select" ] "select-const" (fun ctx op ->
      match (op.Op.operands, op.Op.results) with
      | [ c; t; f ], [ r ] -> (
          match const_of ctx c with
          | Some (Cint 1) -> forward r t
          | Some (Cint 0) -> forward r f
          | _ -> None)
      | _ -> None)

let patterns =
  [
    fold_int_binop;
    fold_float_binop;
    fold_negf;
    fold_cmpi;
    fold_index_cast;
    fold_sitofp;
    float_identities;
    int_identities;
    select_identity;
  ]

let run ?driver (m : Op.t) : Op.t =
  Rewriter.run ?driver ~dead: Effects.removable_if_unused
    ~name: "canonicalize" patterns m

let pass = Pass.make "canonicalize" (fun m -> run m)

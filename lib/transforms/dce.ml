(* Dead code elimination: drop side-effect-free ops whose results are never
   used.  On the Rewriter workspace this is a single cascading walk — erasing
   an op releases its operands, and any released definition whose use count
   drops to zero is erased in turn — so no fixpoint iteration over the whole
   module is needed even when uses cross region boundaries. *)

open Ir

let run ?max_iters:_ (m : Op.t) : Op.t =
  let ws = Rewriter.Workspace.of_op m in
  ignore (Rewriter.erase_dead ~removable: Effects.removable_if_unused ws);
  Rewriter.Workspace.to_op ws

let pass = Pass.make "dce" (fun m -> run m)

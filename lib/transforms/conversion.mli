(** A generic dialect-conversion driver in the style of MLIR's conversion
    framework: a type converter rewrites every value's type, op handlers
    translate individual ops, and unhandled ops are rebuilt generically
    (operands remapped, result/argument types converted, regions
    recursed).  The traversal runs on the shared {!Ir.Rewriter}
    workspace; the handler API is unchanged. *)

open Ir

type ctx = {
  lookup : Value.t -> Value.t;
  bind : Value.t -> Value.t -> unit;
  fresh_converted : Value.t -> Value.t;
}

type handler = ctx -> Builder.t -> Op.t -> bool
(** Returns true when the op was fully handled (replacement emitted and old
    results bound). *)

val convert :
  convert_ty:(Typesys.ty -> Typesys.ty) -> handler:handler -> Op.t -> Op.t

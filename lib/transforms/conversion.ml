(* A generic dialect-conversion driver in the style of MLIR's conversion
   framework: a type converter rewrites the types of every value, and op
   handlers translate individual ops while unhandled ops are rebuilt
   generically (operands remapped, result/block-argument types converted,
   regions recursed into).

   The traversal runs on the shared Rewriter workspace: handled ops are
   spliced out through [Workspace.replace_op] with the handler's builder
   output, unhandled ops are updated in place with [set_shallow].  The
   value map is a plain hashtable exactly as before, so handlers keep the
   same ctx API. *)

open Ir
module W = Rewriter.Workspace

type ctx = {
  lookup : Value.t -> Value.t;  (* old value -> converted value *)
  bind : Value.t -> Value.t -> unit;  (* record old -> new *)
  fresh_converted : Value.t -> Value.t;  (* fresh value of converted type *)
}

(* A handler returns true when it fully handled the op (emitting whatever
   replacement into the builder and binding the old results). *)
type handler = ctx -> Builder.t -> Op.t -> bool

let convert ~(convert_ty : Typesys.ty -> Typesys.ty) ~(handler : handler)
    (m : Op.t) : Op.t =
  let vmap : (int, Value.t) Hashtbl.t = Hashtbl.create 128 in
  let lookup v =
    match Hashtbl.find_opt vmap (Value.id v) with
    | Some v' -> v'
    | None -> v
  in
  let bind old_v new_v = Hashtbl.replace vmap (Value.id old_v) new_v in
  let fresh_converted v =
    let v' = Value.fresh (convert_ty (Value.ty v)) in
    bind v v';
    v'
  in
  let ctx = { lookup; bind; fresh_converted } in
  let rec conv_deep (t : Typesys.ty) : Typesys.ty =
    match t with
    | Typesys.Fn (args, res) ->
        Typesys.Fn (List.map conv_deep args, List.map conv_deep res)
    | t -> convert_ty t
  in
  let ws = W.of_op m in
  let rec visit_block bid =
    W.set_block_args ws bid (List.map fresh_converted (W.block_args ws bid));
    List.iter visit_op (W.block_ops ws bid)
  and visit_op nid =
    (* Handlers see the full op (regions included, still unconverted, as
       under the old block-rebuild traversal). *)
    let op = if W.has_regions ws nid then W.op ws nid else W.shallow ws nid in
    let bld = Builder.create () in
    if handler ctx bld op then
      (* Uses of the old results are remapped lazily through [lookup] as
         their users are visited, so no explicit mapping is needed. *)
      ignore (W.replace_op ws nid (Builder.ops bld) [])
    else begin
      let operands = List.map lookup op.Op.operands in
      let results = List.map fresh_converted op.Op.results in
      (* Keep function signatures in sync with converted types. *)
      let attrs =
        List.map
          (fun (k, a) ->
            match a with
            | Typesys.Type_attr t -> (k, Typesys.Type_attr (conv_deep t))
            | a -> (k, a))
          op.Op.attrs
      in
      W.set_shallow ws nid { op with Op.operands; results; attrs };
      List.iter (List.iter visit_block) (W.blocks ws nid)
    end
  in
  List.iter (List.iter visit_block) (W.blocks ws (W.root ws));
  W.to_op ws

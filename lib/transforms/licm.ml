(* Loop-invariant code motion on the shared Rewriter workspace: hoist
   hoistable ops whose operands are all defined outside the loop body in
   front of the loop.  Applied to scf.for, scf.parallel and gpu.launch
   bodies; the mpi-lowering relies on this to hoist rank queries and
   communication buffers out of time loops.

   Loops are processed inner-first off a queue; when hoisting changed a
   loop, its enclosing loop (if any) is re-queued, so invariants escape
   multiply-nested loops completely without re-printing or re-sweeping the
   module. *)

open Ir
module W = Rewriter.Workspace

let loop_ops = [ "scf.for"; "scf.parallel"; "gpu.launch" ]

let is_loop_node ws nid = List.mem (W.shallow ws nid).Op.name loop_ops

(* Is [v] defined outside the subtree rooted at [loop]? *)
let defined_outside ws ~loop v =
  match W.def_site ws v with
  | `Op d -> not (W.in_subtree ws ~top: loop d)
  | `Arg b -> not (W.block_in_subtree ws ~top: loop b)
  | `None -> true

let body_block ws nid =
  match W.blocks ws nid with [ [ b ] ] -> Some b | _ -> None

(* One scan over the loop body; returns true when something was hoisted.
   Moved ops land directly before the loop in body order. *)
let hoist_once ws loop =
  match body_block ws loop with
  | None -> false
  | Some body ->
      List.fold_left
        (fun changed nid ->
          let op = W.shallow ws nid in
          if
            (not (W.has_regions ws nid))
            && Effects.hoistable op
            && List.for_all (defined_outside ws ~loop) op.Op.operands
          then begin
            W.move_before ws ~anchor: loop nid;
            true
          end
          else changed)
        false
        (W.block_ops ws body)

let run (m : Op.t) : Op.t =
  let ws = W.of_op m in
  let queue = Queue.create () in
  let queued = Hashtbl.create 16 in
  let push nid =
    if not (Hashtbl.mem queued nid) then begin
      Hashtbl.replace queued nid ();
      Queue.add nid queue
    end
  in
  (* Post order queues inner loops before their enclosing loops. *)
  List.iter
    (fun nid -> if is_loop_node ws nid then push nid)
    (W.post_order ws);
  while not (Queue.is_empty queue) do
    let loop = Queue.pop queue in
    Hashtbl.remove queued loop;
    if not (W.is_erased ws loop) then begin
      let rec fixpoint changed =
        if hoist_once ws loop then fixpoint true else changed
      in
      if fixpoint false then
        (* Hoisted ops may now be loop-invariant one level up. *)
        match W.parent_op ws loop with
        | Some p when p <> W.root ws && is_loop_node ws p -> push p
        | _ -> ()
    end
  done;
  W.to_op ws

let pass = Pass.make "loop-invariant-code-motion" run

(* Common sub-expression elimination on the shared Rewriter workspace.

   Pure ops are keyed by (name, operand ids, attributes); a later op with the
   same key in scope forwards its uses to the earlier results and is erased.
   Scoping follows region nesting, so an expression already available in an
   enclosing block is reused inside nested loop bodies as well.

   Attributes are sorted by key before keying: attr order is not semantic,
   and builders reach the same attr set in different orders (Op.set_attr
   prepends), so keying on the raw assoc list missed equal ops. *)

open Ir
module W = Rewriter.Workspace

type key = string * int list * (string * Typesys.attr) list

let key_of (op : Op.t) : key =
  ( op.Op.name,
    List.map Value.id op.Op.operands,
    List.sort (fun (a, _) (b, _) -> String.compare a b) op.Op.attrs )

(* Scopes are an immutable association list from keys to result values, so
   entering a region simply extends the enclosing scope. *)
let run (m : Op.t) : Op.t =
  let ws = W.of_op m in
  let rec visit_block scope bid =
    let scope = ref scope in
    List.iter
      (fun nid ->
        List.iter (List.iter (visit_block !scope)) (W.blocks ws nid);
        (* The shallow op reflects any operand forwarding done so far, so
           keys see post-CSE operands. *)
        let op = W.shallow ws nid in
        if (not (W.has_regions ws nid)) && Effects.pure op then begin
          let k = key_of op in
          match List.assoc_opt k !scope with
          | Some earlier_results ->
              List.iter2
                (fun old_v new_v -> ignore (W.replace_all_uses ws old_v new_v))
                op.Op.results earlier_results;
              ignore (W.erase_op ws nid)
          | None -> scope := (k, op.Op.results) :: !scope
        end)
      (W.block_ops ws bid)
  in
  List.iter (List.iter (visit_block [])) (W.blocks ws (W.root ws));
  W.to_op ws

let pass = Pass.make "cse" run

(** A true multicore SPMD substrate: each rank is an OCaml 5 [Domain].

    Transport is shared-memory: one bounded FIFO mailbox per
    (destination, source, tag) triple, guarded by a mutex/condvar pair,
    with an eager protocol (payloads are copied out at the send call, so
    an [isend] completes immediately unless the mailbox is full —
    backpressure blocks the sender).  Matching is FIFO per channel and
    wildcard ([any_source]) receives scan sources in ascending rank
    order, mirroring [Mpi_sim]'s deterministic matching.

    Unlike the fiber simulator there is no exact deadlock detection —
    ranks run preemptively in parallel — so a configurable {e stall
    watchdog} replaces it: if no transport operation completes for
    [stall_timeout_s] seconds while every unfinished domain is blocked
    in the transport, the run is poisoned, every domain is woken and
    unwound, and {!Stall} is raised with a report naming each blocked
    domain's pending operation. *)

exception Stall of string
(** No transport progress for the stall timeout while every unfinished
    domain was blocked; the payload is a human-readable report. *)

exception Mpi_error of string

include Mpi_intf.MPI_CORE

val host_cores : unit -> int
(** [Domain.recommended_domain_count ()]: how many domains this host can
    usefully run in parallel. *)

val default_stall_timeout_s : float ref
(** Watchdog timeout used by {!run} (seconds; default 30.0). *)

val default_queue_capacity : int ref
(** Mailbox capacity in messages before senders block (default 1024). *)

val run_with :
  ?stall_timeout_s:float ->
  ?queue_capacity:int ->
  ?trace:bool ->
  ranks:int ->
  (rank_ctx -> unit) ->
  comm
(** {!run} with explicit transport configuration. *)

val with_defaults :
  ?stall_timeout_s:float -> ?queue_capacity:int -> (unit -> 'a) -> 'a
(** Run [f] with the mutable defaults overridden (restored on exit) — for
    callers that reach [run] through the substrate-generic signature,
    which has no room for the extra parameters. *)

(* Each rank is a Domain; transport is one bounded mailbox per
   (dest, source, tag) guarded by a mutex/condvar pair.

   Lock-order discipline (the only nestings allowed, so no cycle exists):
     - a rank's own slot mutex, then reg_mutex (released before any
       mailbox lock) while probing mailboxes from a blocked wait;
     - every other site takes exactly one of {slot, reg, mailbox, trace}
       at a time.
   Wakeups: a sender pushes under the mailbox lock, releases it, then
   broadcasts the destination slot's condvar.  A receiver holds its slot
   mutex continuously from the poison/match check through Condition.wait,
   so a wakeup is either observed by the check or delivered to the wait —
   never lost. *)

open Mpi_intf

exception Stall of string
exception Mpi_error of string

(* Internal: raised inside a domain when the run has been poisoned
   (watchdog fired or a sibling failed); caught by the domain wrapper. *)
exception Poisoned

let substrate = "par"
let host_cores () = Domain.recommended_domain_count ()
let default_stall_timeout_s = ref 30.0
let default_queue_capacity = ref 1024

type mailbox = {
  mb_mutex : Mutex.t;
  mb_nonempty : Condition.t;
  mb_nonfull : Condition.t;
  (* Payload plus its accounted byte count, so the receive side stamps
     [Recv_complete] with exactly the bytes the matching [Isend] was
     charged (consistent with mpi_sim). *)
  mb_q : (payload * int) Queue.t;
}

type slot = {
  sl_mutex : Mutex.t;
  sl_cond : Condition.t;
  mutable sl_pending : string option;
      (* the transport operation this rank is (or may be) blocked in *)
  mutable sl_done : bool;
  sl_stats : stats;
}

type comm = {
  world : int;
  capacity : int;
  reg_mutex : Mutex.t;
  mailboxes : (int * int * int, mailbox) Hashtbl.t; (* (dst, src, tag) *)
  slots : slot array;
  poisoned : bool Atomic.t;
  progress : int Atomic.t; (* completed transport operations *)
  finished : int Atomic.t;
  trace_on : bool;
  trace_mutex : Mutex.t;
  mutable next_seq : int;
  mutable rev_trace : timeline_event list;
  t0 : float;
}

(* [owner] is the Domain.id of the rank's main domain, captured when the
   rank body starts: mailbox mutation is only correct from that domain
   (the slot/pending discipline assumes one blocked waiter per rank), so
   every transport entry point asserts ownership.  A compute worker
   (e.g. an omp pool domain) calling send/recv fails loudly with
   [Mpi_error] instead of racing the substrate. *)
type rank_ctx = { comm : comm; me : int; owner : int }

type request =
  | Null_req of rank_ctx
  | Send_req of rank_ctx (* eager protocol: complete at creation *)
  | Recv_req of {
      ctx : rank_ctx;
      source : int; (* may be any_source *)
      tag : int;
      mutable data : payload option;
    }

let rank ctx = ctx.me
let size ctx = ctx.comm.world
let slot_of ctx = ctx.comm.slots.(ctx.me)

let record ctx kind =
  let comm = ctx.comm in
  if comm.trace_on then begin
    Mutex.lock comm.trace_mutex;
    let seq = comm.next_seq in
    comm.next_seq <- seq + 1;
    comm.rev_trace <-
      { seq; ts = Unix.gettimeofday () -. comm.t0; ev_rank = ctx.me; kind }
      :: comm.rev_trace;
    Mutex.unlock comm.trace_mutex
  end

let span_begin ctx name = record ctx (Mpi_intf.Span_begin name)
let span_end ctx name = record ctx (Mpi_intf.Span_end name)

let check_poison comm = if Atomic.get comm.poisoned then raise Poisoned

let mailbox_for comm key =
  Mutex.lock comm.reg_mutex;
  let mb =
    match Hashtbl.find_opt comm.mailboxes key with
    | Some mb -> mb
    | None ->
        let mb =
          {
            mb_mutex = Mutex.create ();
            mb_nonempty = Condition.create ();
            mb_nonfull = Condition.create ();
            mb_q = Queue.create ();
          }
        in
        Hashtbl.add comm.mailboxes key mb;
        mb
  in
  Mutex.unlock comm.reg_mutex;
  mb

let set_pending ctx desc =
  let sl = slot_of ctx in
  Mutex.lock sl.sl_mutex;
  sl.sl_pending <- desc;
  Mutex.unlock sl.sl_mutex

let wake_rank comm r =
  let sl = comm.slots.(r) in
  Mutex.lock sl.sl_mutex;
  Condition.broadcast sl.sl_cond;
  Mutex.unlock sl.sl_mutex

(* Wake every domain blocked anywhere in the transport.  The mailbox list
   is snapshot under reg_mutex and released before any mailbox lock, so
   this never holds two transport locks at once. *)
let broadcast_all comm =
  Mutex.lock comm.reg_mutex;
  let mbs = Hashtbl.fold (fun _ mb acc -> mb :: acc) comm.mailboxes [] in
  Mutex.unlock comm.reg_mutex;
  List.iter
    (fun mb ->
      Mutex.lock mb.mb_mutex;
      Condition.broadcast mb.mb_nonempty;
      Condition.broadcast mb.mb_nonfull;
      Mutex.unlock mb.mb_mutex)
    mbs;
  Array.iter
    (fun sl ->
      Mutex.lock sl.sl_mutex;
      Condition.broadcast sl.sl_cond;
      Mutex.unlock sl.sl_mutex)
    comm.slots

let check_owner ctx what =
  let self = (Domain.self () :> int) in
  if self <> ctx.owner then
    raise
      (Mpi_error
         (Printf.sprintf
            "%s: rank %d's mailbox substrate touched from a foreign domain \
             (id %d, owner %d) — worker domains compute only"
            what ctx.me self ctx.owner))

let check_peer comm what peer =
  if peer < 0 || peer >= comm.world then
    raise
      (Mpi_error
         (Printf.sprintf "%s: invalid rank %d (communicator size %d)" what peer
            comm.world))

(* {2 Point-to-point} *)

let isend ctx ~dest ~tag ?bytes p =
  let comm = ctx.comm in
  check_owner ctx "isend";
  check_peer comm "isend" dest;
  check_poison comm;
  let data = copy_payload p in
  let nbytes = match bytes with Some b -> b | None -> payload_bytes data in
  let mb = mailbox_for comm (dest, ctx.me, tag) in
  set_pending ctx
    (Some (Format.asprintf "isend -> %d %a (backpressure)" dest pp_tag tag));
  Mutex.lock mb.mb_mutex;
  while
    Queue.length mb.mb_q >= comm.capacity && not (Atomic.get comm.poisoned)
  do
    Condition.wait mb.mb_nonfull mb.mb_mutex
  done;
  if Atomic.get comm.poisoned then begin
    Mutex.unlock mb.mb_mutex;
    set_pending ctx None;
    raise Poisoned
  end;
  Queue.push (data, nbytes) mb.mb_q;
  Condition.signal mb.mb_nonempty;
  Mutex.unlock mb.mb_mutex;
  set_pending ctx None;
  let st = (slot_of ctx).sl_stats in
  st.messages <- st.messages + 1;
  st.bytes <- st.bytes + nbytes;
  Atomic.incr comm.progress;
  record ctx (Isend { dest; tag; bytes = nbytes });
  wake_rank comm dest;
  Send_req ctx

let try_pop comm key =
  let mb = mailbox_for comm key in
  Mutex.lock mb.mb_mutex;
  let r =
    if Queue.is_empty mb.mb_q then None
    else begin
      let p = Queue.pop mb.mb_q in
      Condition.signal mb.mb_nonfull;
      Some p
    end
  in
  Mutex.unlock mb.mb_mutex;
  r

(* Deterministic wildcard matching: lowest-ranked pending source wins. *)
let try_match ctx ~source ~tag =
  let comm = ctx.comm in
  if source = any_source then begin
    let rec scan s =
      if s >= comm.world then None
      else
        match try_pop comm (ctx.me, s, tag) with
        | Some p -> Some (s, p)
        | None -> scan (s + 1)
    in
    scan 0
  end
  else
    match try_pop comm (ctx.me, source, tag) with
    | Some p -> Some (source, p)
    | None -> None

let irecv ctx ~source ~tag =
  let comm = ctx.comm in
  check_owner ctx "irecv";
  if source <> any_source then check_peer comm "irecv" source;
  check_poison comm;
  record ctx (Irecv { source; tag });
  Recv_req { ctx; source; tag; data = None }

let try_complete = function
  | Null_req _ | Send_req _ -> true
  | Recv_req r -> (
      match r.data with
      | Some _ -> true
      | None -> (
          match try_match r.ctx ~source:r.source ~tag:r.tag with
          | Some (src, (p, bytes)) ->
              r.data <- Some p;
              Atomic.incr r.ctx.comm.progress;
              record r.ctx (Recv_complete { source = src; tag = r.tag; bytes });
              true
          | None -> false))

let test req =
  (match req with
  | Null_req ctx | Send_req ctx -> check_owner ctx "test"
  | Recv_req r -> check_owner r.ctx "test");
  try_complete req

let describe_request = function
  | Null_req _ -> "null"
  | Send_req _ -> "send"
  | Recv_req r ->
      Format.asprintf "recv <- %a %a" pp_source r.source pp_tag r.tag

(* Block this rank until [pred] holds.  The slot mutex is held from the
   poison/pred check through Condition.wait, so a sender's wakeup is
   either observed by the check or delivered to the wait. *)
let slot_wait ctx ~info pred =
  let comm = ctx.comm in
  let sl = slot_of ctx in
  Mutex.lock sl.sl_mutex;
  let rec loop () =
    if Atomic.get comm.poisoned then begin
      sl.sl_pending <- None;
      Mutex.unlock sl.sl_mutex;
      raise Poisoned
    end
    else if pred () then begin
      sl.sl_pending <- None;
      Mutex.unlock sl.sl_mutex
    end
    else begin
      sl.sl_pending <- Some (info ());
      Condition.wait sl.sl_cond sl.sl_mutex;
      loop ()
    end
  in
  loop ()

let wait req =
  match req with
  | Null_req ctx | Send_req ctx ->
      check_owner ctx "wait";
      (* Eager protocol: already complete, but stamp the wait span so both
         substrates' timelines carry the same events. *)
      record ctx (Wait_begin (describe_request req));
      record ctx Wait_end;
      None
  | Recv_req r ->
      let ctx = r.ctx in
      check_owner ctx "wait";
      record ctx (Wait_begin (describe_request req));
      slot_wait ctx
        ~info:(fun () -> "wait(" ^ describe_request req ^ ")")
        (fun () -> try_complete req);
      record ctx Wait_end;
      r.data

let ctx_of_request = function
  | Null_req ctx | Send_req ctx -> ctx
  | Recv_req r -> r.ctx

let waitall reqs =
  match reqs with
  | [] -> ()
  | first :: _ ->
      let ctx = ctx_of_request first in
      check_owner ctx "waitall";
      record ctx (Waitall_begin (List.length reqs));
      slot_wait ctx
        ~info:(fun () ->
          let pending =
            List.filter_map
              (fun r ->
                match r with
                | Recv_req rr when rr.data = None -> Some (describe_request r)
                | _ -> None)
              reqs
          in
          Printf.sprintf "waitall(%d pending: %s)" (List.length pending)
            (String.concat ", " pending))
        (fun () -> List.for_all try_complete reqs);
      record ctx Waitall_end

let send ctx ~dest ~tag ?bytes p = ignore (isend ctx ~dest ~tag ?bytes p)

let recv ctx ~source ~tag =
  match wait (irecv ctx ~source ~tag) with
  | Some p -> p
  | None -> raise (Mpi_error "recv: request completed without a payload")

let null_request ctx = Null_req ctx

(* {2 Collectives} — shared algorithms, identical reduction order to
   the simulator. *)

module C = Collectives (struct
  type nonrec rank_ctx = rank_ctx

  let rank = rank
  let size = size
  let send = send
  let recv = recv

  let note_collective ctx name =
    let st = (slot_of ctx).sl_stats in
    st.collectives <- st.collectives + 1;
    record ctx (Collective name)

  let payload_error msg = raise (Mpi_error msg)
end)

let bcast = C.bcast
let reduce = C.reduce
let allreduce = C.allreduce
let gather = C.gather
let barrier = C.barrier

(* {2 The runner and its watchdog} *)

let make_comm ~trace ~ranks ~capacity =
  {
    world = ranks;
    capacity;
    reg_mutex = Mutex.create ();
    mailboxes = Hashtbl.create 64;
    slots =
      Array.init ranks (fun _ ->
          {
            sl_mutex = Mutex.create ();
            sl_cond = Condition.create ();
            sl_pending = None;
            sl_done = false;
            sl_stats = { messages = 0; bytes = 0; collectives = 0 };
          });
    poisoned = Atomic.make false;
    progress = Atomic.make 0;
    finished = Atomic.make 0;
    trace_on = trace;
    trace_mutex = Mutex.create ();
    next_seq = 0;
    rev_trace = [];
    t0 = Unix.gettimeofday ();
  }

(* How many trailing timeline events each blocked rank contributes to a
   stall report. *)
let stall_report_events = 5

let stall_report ~timeout comm =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "mpi_par stall: no transport progress for %.2fs across %d domain(s)"
       timeout comm.world);
  let now = Unix.gettimeofday () -. comm.t0 in
  (* Newest-first tail of a rank's timeline, so a deadlock is diagnosable
     from the report alone: op, peer, tag, bytes and how long ago. *)
  let recent_events r =
    if not comm.trace_on then []
    else begin
      Mutex.lock comm.trace_mutex;
      let rec take n = function
        | ev :: rest when n > 0 && ev.ev_rank = r ->
            ev :: take (n - 1) rest
        | _ :: rest when n > 0 -> take n rest
        | _ -> []
      in
      let evs = take stall_report_events comm.rev_trace in
      Mutex.unlock comm.trace_mutex;
      evs
    end
  in
  Array.iteri
    (fun r sl ->
      Mutex.lock sl.sl_mutex;
      let pending = sl.sl_pending and finished = sl.sl_done in
      Mutex.unlock sl.sl_mutex;
      if not finished then begin
        Buffer.add_string b
          (Printf.sprintf "\n  rank %d blocked in %s" r
             (Option.value pending ~default:"(unknown)"));
        List.iter
          (fun ev ->
            Buffer.add_string b
              (Format.asprintf "\n    %.3fs ago: %a"
                 (Float.max 0. (now -. ev.ts))
                 pp_event ev))
          (recent_events r)
      end)
    comm.slots;
  Buffer.contents b

let run_with ?stall_timeout_s ?queue_capacity ?(trace = false) ~ranks body =
  if ranks < 1 then raise (Mpi_error "run: ranks must be >= 1");
  let timeout =
    Option.value stall_timeout_s ~default:!default_stall_timeout_s
  in
  let capacity =
    Option.value queue_capacity ~default:!default_queue_capacity
  in
  if capacity < 1 then raise (Mpi_error "run: queue capacity must be >= 1");
  let comm = make_comm ~trace ~ranks ~capacity in
  let failures = Array.make ranks None in
  let domain_body r () =
    (* Runs inside the spawned domain: this domain IS the rank's main
       domain, so its id is the mailbox owner for the whole rank body. *)
    let ctx = { comm; me = r; owner = (Domain.self () :> int) } in
    (try body ctx with
    | Poisoned -> ()
    | e ->
        failures.(r) <- Some e;
        Atomic.set comm.poisoned true;
        broadcast_all comm);
    let sl = comm.slots.(r) in
    Mutex.lock sl.sl_mutex;
    sl.sl_done <- true;
    sl.sl_pending <- None;
    Mutex.unlock sl.sl_mutex;
    Atomic.incr comm.finished
  in
  let domains = Array.init ranks (fun r -> Domain.spawn (domain_body r)) in
  (* Watchdog: the spawning thread polls until every domain finished.  A
     stall is declared only when no transport operation completed for
     [timeout] seconds AND every unfinished domain is blocked in the
     transport (a long pure-compute phase is not a stall). *)
  let stalled = ref None in
  let last_progress = ref (Atomic.get comm.progress) in
  let last_change = ref (Unix.gettimeofday ()) in
  let all_blocked () =
    Array.for_all
      (fun sl ->
        Mutex.lock sl.sl_mutex;
        let b = sl.sl_done || sl.sl_pending <> None in
        Mutex.unlock sl.sl_mutex;
        b)
      comm.slots
  in
  while Atomic.get comm.finished < ranks && !stalled = None do
    Unix.sleepf 0.001;
    let p = Atomic.get comm.progress in
    if p <> !last_progress || Atomic.get comm.poisoned then begin
      last_progress := p;
      last_change := Unix.gettimeofday ()
    end
    else if Unix.gettimeofday () -. !last_change >= timeout && all_blocked ()
    then begin
      stalled := Some (stall_report ~timeout comm);
      Atomic.set comm.poisoned true;
      broadcast_all comm
    end
  done;
  Array.iter Domain.join domains;
  Array.iter (function Some e -> raise e | None -> ()) failures;
  (match !stalled with Some report -> raise (Stall report) | None -> ());
  comm

let run ?trace ~ranks body = run_with ?trace ~ranks body

let with_defaults ?stall_timeout_s ?queue_capacity f =
  let saved_t = !default_stall_timeout_s
  and saved_c = !default_queue_capacity in
  Option.iter (fun v -> default_stall_timeout_s := v) stall_timeout_s;
  Option.iter (fun v -> default_queue_capacity := v) queue_capacity;
  Fun.protect
    ~finally:(fun () ->
      default_stall_timeout_s := saved_t;
      default_queue_capacity := saved_c)
    f

(* {2 Introspection} *)

let timeline comm = List.rev comm.rev_trace
let rank_timeline comm r = List.filter (fun ev -> ev.ev_rank = r) (timeline comm)

let total_messages comm =
  Array.fold_left (fun acc sl -> acc + sl.sl_stats.messages) 0 comm.slots

let total_bytes comm =
  Array.fold_left (fun acc sl -> acc + sl.sl_stats.bytes) 0 comm.slots

let rank_stats comm r = comm.slots.(r).sl_stats

(** A simulated MPI runtime: the execution substrate standing in for the
    paper's ARCHER2 deployment of mpich.

    Ranks run as effect-handler fibers under a deterministic cooperative
    scheduler; point-to-point messaging uses the eager protocol with FIFO
    matching per (destination, source, tag); collectives are built on
    point-to-point with a reserved tag.  The scheduler detects deadlock,
    and per-rank traffic counters feed the network model.

    The surface implements {!Mpi_intf.MPI_CORE}, the signature shared
    with [Mpi_par] (the multicore domain substrate), so compiled programs
    run unchanged on either. *)

type payload = Mpi_intf.payload =
  | Floats of float array
  | Ints of int array

val payload_elems : payload -> int
val copy_payload : payload -> payload

exception Deadlock of string
(** Raised when every live rank is blocked on an unsatisfiable condition.
    The message names each blocked rank's call (which MPI operation, which
    peer and tag) and, when tracing is on, the rank's last timeline
    event. *)

exception Mpi_error of string

type comm
(** A communicator (the world of one run). *)

type rank_ctx
(** One rank's handle onto the communicator. *)

type request

val substrate : string
(** ["sim"]. *)

val rank : rank_ctx -> int
val size : rank_ctx -> int

val any_source : int
(** Wildcard receive source (= {!Mpi_intf.any_source}).  Matching is
    deterministic: the lowest-ranked source with a pending message
    wins. *)

val collective_tag : int
(** The reserved tag collectives are built on
    (= {!Mpi_intf.collective_tag}). *)

val block_until :
  ?rank:int -> ?info:(unit -> string) -> (unit -> bool) -> unit
(** Cooperative wait primitive (exposed for runtime extensions).  [rank]
    and [info] describe the blocked state for deadlock reports; [info] is
    only forced when a deadlock is being reported. *)

val isend :
  rank_ctx -> dest:int -> tag:int -> ?bytes:int -> payload -> request
(** Eager non-blocking send: the payload is copied out immediately.
    [bytes] overrides the accounted message size. *)

val irecv : rank_ctx -> source:int -> tag:int -> request
(** [source] may be {!any_source}. *)

val test : request -> bool

val wait : request -> payload option
(** Blocks until completion; returns the payload for receive requests. *)

val waitall : request list -> unit
val send : rank_ctx -> dest:int -> tag:int -> ?bytes:int -> payload -> unit
val recv : rank_ctx -> source:int -> tag:int -> payload
val null_request : rank_ctx -> request

val span_begin : rank_ctx -> string -> unit
(** Open a named phase span on this rank's timeline (no-op when tracing
    is off).  Driven by the MPI_Pcontrol markers bracketing halo
    pack/unpack in lowered modules. *)

val span_end : rank_ctx -> string -> unit

val bcast : rank_ctx -> root:int -> payload -> payload
val reduce : rank_ctx -> root:int -> [ `Sum | `Max | `Min ] -> payload -> payload option
val allreduce : rank_ctx -> [ `Sum | `Max | `Min ] -> payload -> payload
val gather : rank_ctx -> root:int -> payload -> payload list option
val barrier : rank_ctx -> unit

val run : ?trace:bool -> ranks:int -> (rank_ctx -> unit) -> comm
(** Run an SPMD body on [ranks] fibers; returns the communicator for
    traffic inspection.  Deterministic: identical runs interleave
    identically.  With [~trace:true] (default false) every rank records
    its event timeline; identical runs produce identical timelines. *)

(** {1 Per-rank event timelines}

    Recorded only when [run ~trace:true]; ordered by a global sequence
    number assigned in deterministic scheduler order.  [ts] is the
    sequence number scaled by 1e-6 (a deterministic pseudo-clock), not
    wall time. *)

type event_kind = Mpi_intf.event_kind =
  | Isend of { dest : int; tag : int; bytes : int }
      (** One posted message edge; [bytes] is the accounted size, so the
          timeline's edge byte total equals {!total_bytes}. *)
  | Irecv of { source : int; tag : int }
      (** [source] may be {!any_source}. *)
  | Recv_complete of { source : int; tag : int; bytes : int }
      (** [source] is the actual sender, even for wildcard receives. *)
  | Wait_begin of string  (** description of the awaited request *)
  | Wait_end
  | Waitall_begin of int  (** number of requests awaited *)
  | Waitall_end
  | Collective of string  (** bcast / reduce / gather / barrier *)
  | Span_begin of string  (** named phase opens (halo pack/unpack) *)
  | Span_end of string

type timeline_event = Mpi_intf.timeline_event = {
  seq : int;
  ts : float;
  ev_rank : int;
  kind : event_kind;
}

val timeline : comm -> timeline_event list
(** All events in sequence order (empty when tracing was off). *)

val rank_timeline : comm -> int -> timeline_event list

val edge_bytes : comm -> int
(** Sum of [Isend] edge bytes over the timeline; equals {!total_bytes}
    when tracing was on. *)

val pp_event : Format.formatter -> timeline_event -> unit

val pp_timeline : Format.formatter -> comm -> unit
(** Human-readable message-flow trace, one event per line. *)

(** {1 Traffic accounting} *)

type stats = Mpi_intf.stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable collectives : int;
}

val total_messages : comm -> int
val total_bytes : comm -> int
val rank_stats : comm -> int -> stats

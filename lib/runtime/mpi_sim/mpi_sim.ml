(* A simulated MPI runtime: the execution substrate standing in for the
   paper's ARCHER2 deployment of mpich.

   Every rank runs as a fiber (an OCaml effect-handler continuation) under a
   deterministic cooperative round-robin scheduler.  Point-to-point messaging
   uses the eager protocol with FIFO matching per (destination, source, tag);
   collectives are built on top of point-to-point with a reserved tag, as in
   textbook MPI implementations.  The scheduler detects deadlock: if every
   live rank is blocked on an unsatisfiable condition the run aborts with
   [Deadlock], naming each blocked rank's call (peer, tag) and — when
   tracing is on — its last timeline event.

   The runtime keeps per-rank traffic counters (messages and bytes); with
   [~trace:true] it additionally records a deterministic per-rank event
   timeline (isend/irecv/recv-complete/wait/waitall/collective) ordered by
   a global sequence number, from which message-flow traces are dumped.

   The surface is [Mpi_intf.MPI_CORE] — the same programs run unchanged on
   [Mpi_par], the multicore domain substrate. *)

type payload = Mpi_intf.payload =
  | Floats of float array
  | Ints of int array

let payload_elems = Mpi_intf.payload_elems
let copy_payload = Mpi_intf.copy_payload

exception Deadlock of string
exception Mpi_error of string

let error fmt = Format.kasprintf (fun s -> raise (Mpi_error s)) fmt

type stats = Mpi_intf.stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable collectives : int;
}

(* --- per-rank event timelines --- *)

type event_kind = Mpi_intf.event_kind =
  | Isend of { dest : int; tag : int; bytes : int }
  | Irecv of { source : int; tag : int }
  | Recv_complete of { source : int; tag : int; bytes : int }
  | Wait_begin of string
  | Wait_end
  | Waitall_begin of int
  | Waitall_end
  | Collective of string
  | Span_begin of string
  | Span_end of string

type timeline_event = Mpi_intf.timeline_event = {
  seq : int;
  ts : float;
  ev_rank : int;
  kind : event_kind;
}

type comm = {
  size : int;
  (* FIFO mailboxes keyed by (dst, src, tag); each entry carries the
     payload together with its accounted byte count so the receive side
     stamps [Recv_complete] with exactly the bytes the matching [Isend]
     was charged. *)
  mailboxes : (int * int * int, (payload * int) Queue.t) Hashtbl.t;
  per_rank : stats array;
  trace_on : bool;
  mutable next_seq : int;
  mutable rev_trace : timeline_event list;
}

type rank_ctx = { rank : int; comm : comm }

type request_kind =
  | Send_req
  | Recv_req of { source : int; tag : int; mutable data : payload option }
  | Null_req

type request = { kind : request_kind; ctx : rank_ctx }

let substrate = "sim"
let tracing ctx = ctx.comm.trace_on

let record ctx kind =
  if ctx.comm.trace_on then begin
    let comm = ctx.comm in
    let seq = comm.next_seq in
    comm.next_seq <- seq + 1;
    (* Deterministic pseudo-timestamp: the logical sequence number scaled
       to "microseconds", so identical runs produce identical
       timelines. *)
    let ts = float_of_int seq *. 1e-6 in
    comm.rev_trace <- { seq; ts; ev_rank = ctx.rank; kind } :: comm.rev_trace
  end

(* Cooperative scheduling primitives.  A blocked fiber carries its rank and
   a lazy description of what it is waiting for, so that deadlock reports
   can name each stuck rank's call. *)

type _ Effect.t +=
  | Block : (unit -> bool) * int * (unit -> string) -> unit Effect.t

let block_until ?(rank = -1) ?(info = fun () -> "blocked") pred =
  if pred () then () else Effect.perform (Block (pred, rank, info))

let collective_tag = Mpi_intf.collective_tag
let any_source = Mpi_intf.any_source

let create_comm ~trace size =
  {
    size;
    mailboxes = Hashtbl.create 64;
    per_rank = Array.init size (fun _ -> { messages = 0; bytes = 0; collectives = 0 });
    trace_on = trace;
    next_seq = 0;
    rev_trace = [];
  }

let mailbox comm key =
  match Hashtbl.find_opt comm.mailboxes key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add comm.mailboxes key q;
      q

let rank ctx = ctx.rank
let size ctx = ctx.comm.size
let span_begin ctx name = record ctx (Span_begin name)
let span_end ctx name = record ctx (Span_end name)

let check_peer ctx peer what =
  if peer < 0 || peer >= ctx.comm.size then
    error "rank %d: %s peer %d out of range [0, %d)" ctx.rank what peer
      ctx.comm.size

let pp_tag = Mpi_intf.pp_tag
let pp_source = Mpi_intf.pp_source

let describe_request (r : request) =
  match r.kind with
  | Send_req -> "wait(send)"
  | Null_req -> "wait(null)"
  | Recv_req { source; tag; _ } ->
      Format.asprintf "wait(irecv src=%a %a)" pp_source source pp_tag tag

(* Eager send: the payload is copied into the destination mailbox and the
   operation completes immediately. *)
let post_send ctx ~dest ~tag ?(bytes = -1) payload =
  check_peer ctx dest "send to";
  let bytes = if bytes >= 0 then bytes else 8 * payload_elems payload in
  let q = mailbox ctx.comm (dest, ctx.rank, tag) in
  Queue.push (copy_payload payload, bytes) q;
  let s = ctx.comm.per_rank.(ctx.rank) in
  s.messages <- s.messages + 1;
  s.bytes <- s.bytes + bytes;
  record ctx (Isend { dest; tag; bytes })

let isend ctx ~dest ~tag ?bytes payload =
  post_send ctx ~dest ~tag ?bytes payload;
  { kind = Send_req; ctx }

(* FIFO matching; a wildcard ([any_source]) receive deterministically
   takes the lowest-ranked source with a pending message. *)
let try_match ctx ~source ~tag =
  if source = any_source then begin
    let rec scan s =
      if s >= ctx.comm.size then None
      else
        let q = mailbox ctx.comm (ctx.rank, s, tag) in
        if Queue.is_empty q then scan (s + 1) else Some (s, Queue.pop q)
    in
    scan 0
  end
  else begin
    let q = mailbox ctx.comm (ctx.rank, source, tag) in
    if Queue.is_empty q then None else Some (source, Queue.pop q)
  end

let irecv ctx ~source ~tag =
  if source <> any_source then check_peer ctx source "receive from";
  record ctx (Irecv { source; tag });
  { kind = Recv_req { source; tag; data = None }; ctx }

let request_complete (r : request) =
  match r.kind with
  | Send_req | Null_req -> true
  | Recv_req rr -> (
      match rr.data with
      | Some _ -> true
      | None -> (
          match try_match r.ctx ~source: rr.source ~tag: rr.tag with
          | Some (src, (p, bytes)) ->
              rr.data <- Some p;
              record r.ctx
                (Recv_complete { source = src; tag = rr.tag; bytes });
              true
          | None -> false))

let null_request ctx = { kind = Null_req; ctx }

let test (r : request) = request_complete r

let wait (r : request) : payload option =
  if tracing r.ctx then record r.ctx (Wait_begin (describe_request r));
  block_until ~rank: r.ctx.rank
    ~info: (fun () -> describe_request r)
    (fun () -> request_complete r);
  if tracing r.ctx then record r.ctx Wait_end;
  match r.kind with
  | Recv_req rr -> rr.data
  | Send_req | Null_req -> None

let waitall (rs : request list) : unit =
  match rs with
  | [] -> ()
  | first :: _ ->
      let ctx = first.ctx in
      record ctx (Waitall_begin (List.length rs));
      block_until ~rank: ctx.rank
        ~info: (fun () ->
          let pending =
            List.filter (fun r -> not (request_complete r)) rs
          in
          Printf.sprintf "waitall(%d of %d pending%s)" (List.length pending)
            (List.length rs)
            (match pending with
            | [] -> ""
            | ps -> ": " ^ String.concat ", " (List.map describe_request ps)))
        (fun () -> List.for_all request_complete rs);
      record ctx Waitall_end;
      List.iter (fun r -> ignore (wait r)) rs

let send ctx ~dest ~tag ?bytes payload =
  ignore (isend ctx ~dest ~tag ?bytes payload)

let recv ctx ~source ~tag : payload =
  let r = irecv ctx ~source ~tag in
  match wait r with
  | Some p -> p
  | None -> error "recv completed without payload"

(* Collectives: the algorithms shared with the parallel substrate, so
   reduction orders (and therefore floating-point results) match. *)

let note_collective ctx name =
  let s = ctx.comm.per_rank.(ctx.rank) in
  s.collectives <- s.collectives + 1;
  record ctx (Collective name)

module C = Mpi_intf.Collectives (struct
  type nonrec rank_ctx = rank_ctx

  let rank = rank
  let size = size
  let send = send
  let recv = recv
  let note_collective = note_collective
  let payload_error msg = raise (Mpi_error msg)
end)

let bcast = C.bcast
let reduce = C.reduce
let allreduce = C.allreduce
let gather = C.gather
let barrier = C.barrier

(* --- timeline accessors --- *)

let timeline comm = List.rev comm.rev_trace

let rank_timeline comm r =
  List.filter (fun ev -> ev.ev_rank = r) (timeline comm)

let edge_bytes comm = Mpi_intf.edge_bytes_of (timeline comm)
let pp_event = Mpi_intf.pp_event

let pp_timeline fmt comm =
  List.iter (fun ev -> Format.fprintf fmt "%a@." pp_event ev) (timeline comm)

let last_event_of comm r =
  (* rev_trace is newest-first. *)
  List.find_opt (fun ev -> ev.ev_rank = r) comm.rev_trace

(* The scheduler. *)

let run ?(trace = false) ~ranks (body : rank_ctx -> unit) : comm =
  if ranks <= 0 then invalid_arg "Mpi_sim.run: ranks must be positive";
  let comm = create_comm ~trace ranks in
  let runnable : (unit -> unit) Queue.t = Queue.create () in
  let blocked :
      ((unit -> bool) * int * (unit -> string) * (unit -> unit)) list ref =
    ref []
  in
  let failure : exn option ref = ref None in
  let open Effect.Deep in
  let make_fiber r () =
    match_with
      (fun () -> body { rank = r; comm })
      ()
      {
        retc = (fun () -> ());
        exnc = (fun e -> if !failure = None then failure := Some e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Block (pred, rank, info) ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    blocked :=
                      (pred, rank, info, fun () -> continue k ()) :: !blocked)
            | _ -> None);
      }
  in
  for r = 0 to ranks - 1 do
    Queue.push (make_fiber r) runnable
  done;
  let describe_blocked (_, rank, info, _) =
    let last =
      match if trace then last_event_of comm rank else None with
      | Some ev -> Format.asprintf " (last event %a)" pp_event ev
      | None -> ""
    in
    Printf.sprintf "  rank %d blocked in %s%s" rank (info ()) last
  in
  let rec loop () =
    if !failure <> None then ()
    else if not (Queue.is_empty runnable) then begin
      let fiber = Queue.pop runnable in
      fiber ();
      loop ()
    end
    else if !blocked <> [] then begin
      (* Wake every fiber whose condition is now satisfied. *)
      let ready, still =
        List.partition (fun (pred, _, _, _) -> pred ()) !blocked
      in
      if ready = [] then begin
        let by_rank =
          List.sort
            (fun (_, a, _, _) (_, b, _, _) -> compare (a : int) b)
            still
        in
        raise
          (Deadlock
             (Printf.sprintf "%d rank(s) blocked with no runnable fiber:\n%s"
                (List.length still)
                (String.concat "\n" (List.map describe_blocked by_rank))))
      end
      else begin
        blocked := still;
        (* Preserve rough rank order for determinism. *)
        List.iter (fun (_, _, _, k) -> Queue.push k runnable) (List.rev ready);
        loop ()
      end
    end
  in
  loop ();
  (match !failure with Some e -> raise e | None -> ());
  comm

(* Aggregate traffic statistics. *)

let total_messages comm =
  Array.fold_left (fun acc s -> acc + s.messages) 0 comm.per_rank

let total_bytes comm =
  Array.fold_left (fun acc s -> acc + s.bytes) 0 comm.per_rank

let rank_stats comm r = comm.per_rank.(r)

(* The MPI substrate interface: payloads, timelines, traffic counters and
   the MPI_CORE signature shared by the deterministic simulator (Mpi_sim)
   and the multicore domain runtime (Mpi_par), plus the collective
   algorithms both substrates instantiate so their reduction orders — and
   therefore floating-point results — are identical. *)

type payload = Floats of float array | Ints of int array

let payload_elems = function
  | Floats a -> Array.length a
  | Ints a -> Array.length a

let copy_payload = function
  | Floats a -> Floats (Array.copy a)
  | Ints a -> Ints (Array.copy a)

let payload_bytes p = 8 * payload_elems p

(* Matches Core.Mpi.Mpich.any_source, so fully lowered modules can pass
   the magic constant straight through to either substrate. *)
let any_source = -2
let collective_tag = -1

type stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable collectives : int;
}

type event_kind =
  | Isend of { dest : int; tag : int; bytes : int }
  | Irecv of { source : int; tag : int }
  | Recv_complete of { source : int; tag : int; bytes : int }
  | Wait_begin of string
  | Wait_end
  | Waitall_begin of int
  | Waitall_end
  | Collective of string
  (* Named phase spans (halo pack/unpack, via MPI_Pcontrol markers). *)
  | Span_begin of string
  | Span_end of string

type timeline_event = { seq : int; ts : float; ev_rank : int; kind : event_kind }

let pp_tag fmt tag =
  if tag = collective_tag then Format.pp_print_string fmt "collective"
  else Format.fprintf fmt "tag=%d" tag

let pp_source fmt source =
  if source = any_source then Format.pp_print_string fmt "any"
  else Format.pp_print_int fmt source

let pp_event fmt (ev : timeline_event) =
  let k fmt = Format.fprintf fmt in
  Format.fprintf fmt "[%4d] rank %d: " ev.seq ev.ev_rank;
  match ev.kind with
  | Isend { dest; tag; bytes } ->
      k fmt "isend -> %d %a bytes=%d" dest pp_tag tag bytes
  | Irecv { source; tag } -> k fmt "irecv <- %a %a" pp_source source pp_tag tag
  | Recv_complete { source; tag; bytes } ->
      k fmt "recv-complete <- %d %a bytes=%d" source pp_tag tag bytes
  | Wait_begin what -> k fmt "wait-begin %s" what
  | Wait_end -> k fmt "wait-end"
  | Waitall_begin n -> k fmt "waitall-begin (%d request(s))" n
  | Waitall_end -> k fmt "waitall-end"
  | Collective name -> k fmt "collective %s" name
  | Span_begin name -> k fmt "span-begin %s" name
  | Span_end name -> k fmt "span-end %s" name

let edge_bytes_of tl =
  List.fold_left
    (fun acc (ev : timeline_event) ->
      match ev.kind with Isend { bytes; _ } -> acc + bytes | _ -> acc)
    0 tl

module type MPI_CORE = sig
  type comm
  type rank_ctx
  type request

  val substrate : string
  val rank : rank_ctx -> int
  val size : rank_ctx -> int

  val isend :
    rank_ctx -> dest:int -> tag:int -> ?bytes:int -> payload -> request

  val irecv : rank_ctx -> source:int -> tag:int -> request
  val test : request -> bool
  val wait : request -> payload option
  val waitall : request list -> unit
  val send : rank_ctx -> dest:int -> tag:int -> ?bytes:int -> payload -> unit
  val recv : rank_ctx -> source:int -> tag:int -> payload
  val null_request : rank_ctx -> request

  (* Open/close a named phase span on this rank's timeline (no-ops when
     tracing is off).  Driven by MPI_Pcontrol markers in lowered modules,
     so pack/unpack time shows up in exported traces. *)
  val span_begin : rank_ctx -> string -> unit
  val span_end : rank_ctx -> string -> unit
  val bcast : rank_ctx -> root:int -> payload -> payload

  val reduce :
    rank_ctx -> root:int -> [ `Sum | `Max | `Min ] -> payload -> payload option

  val allreduce : rank_ctx -> [ `Sum | `Max | `Min ] -> payload -> payload
  val gather : rank_ctx -> root:int -> payload -> payload list option
  val barrier : rank_ctx -> unit
  val run : ?trace:bool -> ranks:int -> (rank_ctx -> unit) -> comm
  val timeline : comm -> timeline_event list
  val rank_timeline : comm -> int -> timeline_event list
  val total_messages : comm -> int
  val total_bytes : comm -> int
  val rank_stats : comm -> int -> stats
end

(* Collectives over point-to-point with the reserved tag.  FIFO matching
   per (dst, src, tag) keeps consecutive collectives ordered; the root
   combines contributions in rank order, fixing the floating-point
   reduction order across substrates. *)
module Collectives (P : sig
  type rank_ctx

  val rank : rank_ctx -> int
  val size : rank_ctx -> int
  val send : rank_ctx -> dest:int -> tag:int -> ?bytes:int -> payload -> unit
  val recv : rank_ctx -> source:int -> tag:int -> payload
  val note_collective : rank_ctx -> string -> unit
  val payload_error : string -> 'a
end) =
struct
  let bcast ctx ~root (payload : payload) : payload =
    P.note_collective ctx "bcast";
    if P.rank ctx = root then begin
      for dest = 0 to P.size ctx - 1 do
        if dest <> root then P.send ctx ~dest ~tag: collective_tag payload
      done;
      payload
    end
    else P.recv ctx ~source: root ~tag: collective_tag

  let combine op a b =
    match (a, b) with
    | Floats x, Floats y ->
        Floats
          (Array.mapi
             (fun i v ->
               match op with
               | `Sum -> v +. y.(i)
               | `Max -> Float.max v y.(i)
               | `Min -> Float.min v y.(i))
             x)
    | Ints x, Ints y ->
        Ints
          (Array.mapi
             (fun i v ->
               match op with
               | `Sum -> v + y.(i)
               | `Max -> max v y.(i)
               | `Min -> min v y.(i))
             x)
    | _ -> P.payload_error "reduce: mixed payload kinds"

  let reduce ctx ~root op (payload : payload) : payload option =
    P.note_collective ctx "reduce";
    if P.rank ctx = root then begin
      let acc = ref (copy_payload payload) in
      for source = 0 to P.size ctx - 1 do
        if source <> root then
          acc := combine op !acc (P.recv ctx ~source ~tag: collective_tag)
      done;
      Some !acc
    end
    else begin
      P.send ctx ~dest: root ~tag: collective_tag payload;
      None
    end

  let allreduce ctx op (payload : payload) : payload =
    match reduce ctx ~root: 0 op payload with
    | Some combined -> bcast ctx ~root: 0 combined
    | None -> bcast ctx ~root: 0 payload

  let gather ctx ~root (payload : payload) : payload list option =
    P.note_collective ctx "gather";
    if P.rank ctx = root then begin
      let parts =
        List.init (P.size ctx) (fun source ->
            if source = root then copy_payload payload
            else P.recv ctx ~source ~tag: collective_tag)
      in
      Some parts
    end
    else begin
      P.send ctx ~dest: root ~tag: collective_tag payload;
      None
    end

  let barrier ctx =
    P.note_collective ctx "barrier";
    ignore (allreduce ctx `Sum (Ints [| 0 |]))
end

(** The MPI substrate interface: the surface shared by every execution
    runtime of the stack.

    Two substrates implement it today: [Mpi_sim] (deterministic
    cooperative fibers on one core, exact deadlock detection — the unit
    of validation) and [Mpi_par] (one OCaml 5 domain per rank over
    shared-memory mailboxes — the unit of measurement).  Everything that
    executes distributed programs ([Runtime_link], [Driver.Simulate],
    [Driver.Harness]) is written against {!MPI_CORE}, so compiled modules
    run unchanged on either substrate. *)

(** {1 Payloads} *)

type payload = Floats of float array | Ints of int array

val payload_elems : payload -> int

val copy_payload : payload -> payload
(** A deep copy.  Substrates must copy payloads at the send boundary so a
    receiver never aliases a sender's mutable array — on the parallel
    substrate an aliased array would be a cross-domain data race. *)

val payload_bytes : payload -> int
(** Default accounted size (8 bytes per element). *)

val any_source : int
(** Wildcard receive source ([MPI_ANY_SOURCE]; equals the mpich magic
    value in [Core.Mpi.Mpich]).  Matching order is deterministic: the
    lowest-ranked source with a pending message wins. *)

val collective_tag : int
(** The reserved tag collectives are built on. *)

(** {1 Traffic accounting} *)

type stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable collectives : int;
}

(** {1 Per-rank event timelines} *)

type event_kind =
  | Isend of { dest : int; tag : int; bytes : int }
  | Irecv of { source : int; tag : int }
      (** [source] may be {!any_source}. *)
  | Recv_complete of { source : int; tag : int; bytes : int }
      (** [source] is the actual sender, even for wildcard receives. *)
  | Wait_begin of string
  | Wait_end
  | Waitall_begin of int
  | Waitall_end
  | Collective of string
  | Span_begin of string
      (** Open a named phase span (halo pack/unpack, via MPI_Pcontrol). *)
  | Span_end of string

type timeline_event = {
  seq : int;  (** global emission order *)
  ts : float;
      (** seconds: wall-clock since the run started on measuring
          substrates, the logical sequence number scaled by 1e-6 on
          deterministic ones *)
  ev_rank : int;
  kind : event_kind;
}

val pp_tag : Format.formatter -> int -> unit
val pp_source : Format.formatter -> int -> unit
val pp_event : Format.formatter -> timeline_event -> unit

val edge_bytes_of : timeline_event list -> int
(** Sum of [Isend] edge bytes. *)

(** {1 The substrate signature} *)

module type MPI_CORE = sig
  type comm
  (** A communicator (the world of one run). *)

  type rank_ctx
  (** One rank's handle onto the communicator. *)

  type request

  val substrate : string
  (** Short name for reports ("sim", "par"). *)

  val rank : rank_ctx -> int
  val size : rank_ctx -> int

  val isend :
    rank_ctx -> dest:int -> tag:int -> ?bytes:int -> payload -> request
  (** Eager non-blocking send: the payload is copied out immediately.
      [bytes] overrides the accounted message size. *)

  val irecv : rank_ctx -> source:int -> tag:int -> request
  (** [source] may be {!any_source}. *)

  val test : request -> bool

  val wait : request -> payload option
  (** Blocks until completion; returns the payload for receive
      requests. *)

  val waitall : request list -> unit
  val send : rank_ctx -> dest:int -> tag:int -> ?bytes:int -> payload -> unit
  val recv : rank_ctx -> source:int -> tag:int -> payload
  val null_request : rank_ctx -> request

  val span_begin : rank_ctx -> string -> unit
  (** Open a named phase span on this rank's timeline (no-op when tracing
      is off).  Driven by the MPI_Pcontrol markers that bracket halo
      pack/unpack in lowered modules. *)

  val span_end : rank_ctx -> string -> unit

  val bcast : rank_ctx -> root:int -> payload -> payload

  val reduce :
    rank_ctx -> root:int -> [ `Sum | `Max | `Min ] -> payload -> payload option

  val allreduce : rank_ctx -> [ `Sum | `Max | `Min ] -> payload -> payload
  val gather : rank_ctx -> root:int -> payload -> payload list option
  val barrier : rank_ctx -> unit

  val run : ?trace:bool -> ranks:int -> (rank_ctx -> unit) -> comm
  (** Run an SPMD body on [ranks] execution contexts; returns the
      communicator for traffic inspection.  With [~trace:true] (default
      false) every rank records its event timeline. *)

  val timeline : comm -> timeline_event list
  (** All events in sequence order (empty when tracing was off). *)

  val rank_timeline : comm -> int -> timeline_event list
  val total_messages : comm -> int
  val total_bytes : comm -> int
  val rank_stats : comm -> int -> stats
end

(** {1 Shared collective algorithms}

    Collectives are built on point-to-point with the reserved tag, as in
    textbook MPI implementations; both substrates instantiate this
    functor so their reduction orders (and therefore floating-point
    results) are identical. *)

module Collectives (P : sig
  type rank_ctx

  val rank : rank_ctx -> int
  val size : rank_ctx -> int
  val send : rank_ctx -> dest:int -> tag:int -> ?bytes:int -> payload -> unit
  val recv : rank_ctx -> source:int -> tag:int -> payload

  val note_collective : rank_ctx -> string -> unit
  (** Count + trace one collective entry. *)

  val payload_error : string -> 'a
  (** Raise the substrate's error exception. *)
end) : sig
  val bcast : P.rank_ctx -> root:int -> payload -> payload

  val reduce :
    P.rank_ctx ->
    root:int ->
    [ `Sum | `Max | `Min ] ->
    payload ->
    payload option

  val allreduce : P.rank_ctx -> [ `Sum | `Max | `Min ] -> payload -> payload
  val gather : P.rank_ctx -> root:int -> payload -> payload list option
  val barrier : P.rank_ctx -> unit
end

(* Host-side domain decomposition helpers: scatter a global field into
   rank-local buffers (halos included) and gather rank interiors back.  Used
   by examples, tests and benchmarks to set up and check distributed runs. *)

open Ir

let rank_coords ~grid rank =
  let strides = Core.Dmp_to_mpi.grid_strides grid in
  List.map2 (fun g s -> rank / s mod g) grid strides

(* Iterate over all logical coordinates of a buffer. *)
let iter_coords (b : Interp.Rtval.buffer) f =
  let rec nest shape lo coords =
    match (shape, lo) with
    | [], [] -> f (List.rev coords)
    | s :: shape', l :: lo' ->
        for i = l to l + s - 1 do
          nest shape' lo' (i :: coords)
        done
    | _ -> invalid_arg "iter_coords"
  in
  nest b.Interp.Rtval.shape b.Interp.Rtval.lo []

(* Allocate the local buffer for [rank] of a field with [local_bounds],
   filling every point (interior and halo) from the global buffer where the
   corresponding global coordinate exists, and 0 elsewhere. *)
let scatter_field ~(global : Interp.Rtval.buffer) ~grid
    ~(local_bounds : Typesys.bound list) ~rank : Interp.Rtval.buffer =
  let coords = rank_coords ~grid rank in
  (* Ghost margins are symmetric ([lo, hi) = [-m, n_loc + m)), so the local
     interior extent per dimension is hi + lo. *)
  let interior =
    List.map
      (fun (b : Typesys.bound) -> b.Typesys.hi + b.Typesys.lo)
      local_bounds
  in
  let shape = List.map Typesys.bound_size local_bounds in
  let lo = List.map (fun (b : Typesys.bound) -> b.Typesys.lo) local_bounds in
  let local =
    Interp.Rtval.alloc_buffer ~lo shape global.Interp.Rtval.elt
  in
  let offset = List.map2 (fun c n -> c * n) coords interior in
  iter_coords local (fun local_coords ->
      let global_coords = List.map2 ( + ) local_coords offset in
      let in_bounds =
        List.for_all2
          (fun gc (s, l) -> gc >= l && gc < l + s)
          global_coords
          (List.combine global.Interp.Rtval.shape global.Interp.Rtval.lo)
      in
      if in_bounds then
        Interp.Rtval.set local local_coords
          (Interp.Rtval.get global global_coords));
  local

(* Copy the interior [0, interior) of [local] into the global buffer at this
   rank's offset.  [origin] shifts local coordinates for buffers whose
   logical origin was rebased to zero after lowering (pass the halo width
   per dimension). *)
let gather_interior ?origin ~(global : Interp.Rtval.buffer)
    ~(local : Interp.Rtval.buffer) ~grid ~(interior : int list) ~rank () :
    unit =
  let coords = rank_coords ~grid rank in
  let offset = List.map2 (fun c n -> c * n) coords interior in
  let origin =
    match origin with Some o -> o | None -> List.map (fun _ -> 0) interior
  in
  let rec nest dims coords =
    match dims with
    | [] ->
        let local_coords = List.rev coords in
        let global_coords = List.map2 ( + ) local_coords offset in
        Interp.Rtval.set global global_coords
          (Interp.Rtval.get local (List.map2 ( + ) local_coords origin))
    | n :: rest ->
        for i = 0 to n - 1 do
          nest rest (i :: coords)
        done
  in
  nest interior []

(* Local bounds of a distributed function's field arguments, read straight
   off the (already localized) types. *)
let field_arg_bounds (fop : Op.t) : Typesys.bound list list =
  let arg_tys, _ = Dialects.Func.signature_of fop in
  List.filter_map Typesys.bounds_of arg_tys

(* After full lowering the signature's field types have been converted to
   memrefs, so the localized bounds are no longer recoverable from the
   types alone; the distribution pass preserves them in the
   dmp.local_fields attribute.  Fall back to the signature for modules
   that still carry field types (e.g. a distributed-but-unlowered module). *)
let local_field_bounds (fop : Op.t) : Typesys.bound list list =
  match Op.attr fop "dmp.local_fields" with
  | Some (Typesys.Type_attr (Typesys.Fn (arg_tys, _))) ->
      List.filter_map Typesys.bounds_of arg_tys
  | _ -> field_arg_bounds fop

let topology_of (fop : Op.t) : int list =
  match Op.attr fop "dmp.topology" with
  | Some (Typesys.Grid_attr g) -> g
  | _ -> Op.ill_formed "function has no dmp.topology attribute"

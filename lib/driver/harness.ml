(* End-to-end distributed execution harness: take a stencil-dialect module
   (e.g. a Devito operator), run it serially for reference, distribute +
   fully lower it, execute it on a chosen MPI substrate (simulated fibers
   or real domains), gather rank interiors and compare against the serial
   run.  One entry point shared by stencilc --run-par/--run-sim, the
   bench par section and the parallel-runtime tests. *)

open Ir

type substrate = Sim | Par

type result = {
  ranks : int;
  grid : int list;
  substrate_name : string;
  executor_name : string;
  overlap : bool;
  serial_wall_s : float;
  wall_s : float;
  max_diff_vs_serial : float;
  messages : int;
  bytes : int;
  domain : int list;
  gathered : Interp.Rtval.buffer list;
  serial : Interp.Rtval.buffer list;
  analysis : Analysis.report option;
}

let default_func m =
  let rec find = function
    | [] -> Interp.Rtval.error "harness: no function with sym_name in module"
    | op :: rest -> (
        match Op.attr op "sym_name" with
        | Some (Typesys.String_attr s) | Some (Typesys.Symbol_attr s) -> s
        | _ -> find rest)
  in
  find (Op.module_ops m)

let rebase (b : Interp.Rtval.buffer) =
  { b with Interp.Rtval.lo = List.map (fun _ -> 0) b.Interp.Rtval.lo }

(* Field arguments of [func] in [m]: (element type, global bounds) per
   buffer argument. *)
let field_args m func =
  let fop =
    match Op.lookup_symbol m func with
    | Some f -> f
    | None -> Interp.Rtval.error "harness: no function %S in module" func
  in
  let arg_tys, _ = Dialects.Func.signature_of fop in
  List.filter_map
    (fun ty ->
      match Typesys.bounds_of ty with
      | Some bounds ->
          let elt = Option.value (Typesys.element_of ty) ~default: Typesys.f64 in
          Some (elt, bounds)
      | None -> None)
    arg_tys

(* Deterministically initialized global buffer for one field argument. *)
let global_field ~seed (elt, (bounds : Typesys.bound list)) =
  let lo = List.map (fun (b : Typesys.bound) -> b.Typesys.lo) bounds in
  let shape = List.map Typesys.bound_size bounds in
  let b = Interp.Rtval.alloc_buffer ~lo shape elt in
  Interp.Rtval.fill b (fun i -> Float.sin (float_of_int (seed + i) *. 0.37));
  b

(* Max abs difference over the interior [0, domain_d) per dimension. *)
let interior_diff ~(domain : int list) (a : Interp.Rtval.buffer)
    (b : Interp.Rtval.buffer) : float =
  let worst = ref 0. in
  let rec nest dims coords =
    match dims with
    | [] ->
        let c = List.rev coords in
        let s = Interp.Rtval.as_float (Interp.Rtval.get a c) in
        let d = Interp.Rtval.as_float (Interp.Rtval.get b c) in
        worst := Float.max !worst (Float.abs (s -. d))
    | n :: rest ->
        for i = 0 to n - 1 do
          nest rest (i :: coords)
        done
  in
  nest domain [];
  !worst

let max_result_diff (a : result) (b : result) : float =
  if List.length a.gathered <> List.length b.gathered then infinity
  else
    List.fold_left2
      (fun acc x y -> Float.max acc (interior_diff ~domain: a.domain x y))
      0. a.gathered b.gathered

(* Substrate-generic executor. *)
module Runner (M : Mpi_intf.MPI_CORE) = struct
  module S = Simulate.Spmd (M)

  let exec ?(trace = false) ?(threads = 1) ~program ~ranks ~func ~make_args
      ~collect m =
    let comm =
      S.run_spmd ~trace ~program ~threads ~ranks ~func
        ~make_args: (fun ctx -> make_args (M.rank ctx))
        ~collect: (fun ctx _args results -> collect (M.rank ctx) results)
        m
    in
    let tl = if trace then M.timeline comm else [] in
    (M.substrate, M.total_messages comm, M.total_bytes comm, tl)
end

module Sim_runner = Runner (Mpi_sim)
module Par_runner = Runner (Mpi_par)

let run_distributed ?(substrate = Sim)
    ?(strategy = Core.Decomposition.Slice2d)
    ?(mode = Core.Decomposition.Faces) ?stall_timeout_s
    ?queue_capacity ?(trace = false) ?executor ?(seed = 0) ?func
    ?(overlap = true) ?(tiles = []) ?(threads_per_rank = 1) ~ranks (m : Op.t) :
    result =
  let func = match func with Some f -> f | None -> default_func m in
  let args = field_args m func in
  if args = [] then
    Interp.Rtval.error "harness: %S has no field (buffer) arguments" func;
  let domain =
    let _, bounds = List.hd args in
    List.map (fun (b : Typesys.bound) -> b.Typesys.hi + b.Typesys.lo) bounds
  in
  (* Serial reference, timed. *)
  let serial_inputs = List.map (global_field ~seed) args in
  let t0 = Unix.gettimeofday () in
  let serial_results =
    Simulate.run_serial ~func m
      (List.map (fun b -> Interp.Rtval.Rbuf b) serial_inputs)
  in
  let serial_wall_s = Unix.gettimeofday () -. t0 in
  let serial =
    List.filter_map
      (function Interp.Rtval.Rbuf b -> Some b | _ -> None)
      serial_results
  in
  (* Distribute and lower to MPI_* function calls — through the artifact
     layer, so [Core.Pipeline.pipeline_for (Distributed_cpu ...)] is the
     single definition of the executed flow and structurally identical
     requests (every rank, every repetition, every --serve client) share
     one compilation.  The localized grid/bounds are read off the fully
     lowered module via the dmp.topology / dmp.local_fields attributes
     the distribution pass leaves behind. *)
  let target =
    Core.Pipeline.Distributed_cpu { ranks; strategy; mode; tiles; overlap }
  in
  let art = Service.Artifact.get ?executor ~target m in
  let lowered = art.Service.Artifact.lowered in
  let fop_l =
    match Op.lookup_symbol lowered func with
    | Some f -> f
    | None -> Interp.Rtval.error "harness: %S lost in distribution" func
  in
  let grid = Domain.topology_of fop_l in
  let local_bounds =
    match Domain.local_field_bounds fop_l with
    | bs :: _ -> bs
    | [] -> Interp.Rtval.error "harness: no localized field bounds"
  in
  let interior = List.map2 (fun n parts -> n / parts) domain grid in
  let origin =
    List.map (fun (b : Typesys.bound) -> -b.Typesys.lo) local_bounds
  in
  (* Fresh identically-initialized globals to scatter from, and gather
     targets mirroring the serial result buffers. *)
  let globals = List.map (global_field ~seed) args in
  let gathered =
    List.map
      (fun (b : Interp.Rtval.buffer) ->
        Interp.Rtval.alloc_buffer ~lo: b.Interp.Rtval.lo b.Interp.Rtval.shape
          b.Interp.Rtval.elt)
      serial
  in
  let make_args rank =
    List.map
      (fun global ->
        Interp.Rtval.Rbuf
          (rebase (Domain.scatter_field ~global ~grid ~local_bounds ~rank)))
      globals
  in
  let collect rank results =
    List.iteri
      (fun k r ->
        match r with
        | Interp.Rtval.Rbuf local ->
            Domain.gather_interior ~origin ~global: (List.nth gathered k)
              ~local ~grid ~interior ~rank ()
        | _ -> ())
      results
  in
  (* The serial reference above always runs on the interpreter — it is the
     oracle; [executor] selects the backend for the distributed run only.
     All ranks instantiate the one shared program from the artifact. *)
  let executor_name = art.Service.Artifact.executor_name in
  let program = art.Service.Artifact.program in
  let t1 = Unix.gettimeofday () in
  let threads = threads_per_rank in
  let substrate_name, messages, bytes, tl =
    match substrate with
    | Sim ->
        Sim_runner.exec ~trace ~threads ~program ~ranks ~func ~make_args
          ~collect lowered
    | Par ->
        Mpi_par.with_defaults ?stall_timeout_s ?queue_capacity (fun () ->
            Par_runner.exec ~trace ~threads ~program ~ranks ~func ~make_args
              ~collect lowered)
  in
  let wall_s = Unix.gettimeofday () -. t1 in
  let analysis = if trace then Some (Analysis.analyze ~ranks tl) else None in
  let max_diff_vs_serial =
    List.fold_left2
      (fun acc s g -> Float.max acc (interior_diff ~domain s g))
      0. serial gathered
  in
  {
    ranks;
    grid;
    substrate_name;
    executor_name;
    overlap;
    serial_wall_s;
    wall_s;
    max_diff_vs_serial;
    messages;
    bytes;
    domain;
    gathered;
    serial;
    analysis;
  }

(** Host-side domain decomposition helpers: scatter a global field into
    rank-local buffers (halos included) and gather rank interiors back. *)

open Ir

val rank_coords : grid:int list -> int -> int list
(** Cartesian coordinates of a rank in a row-major grid. *)

val iter_coords : Interp.Rtval.buffer -> (int list -> unit) -> unit

val scatter_field :
  global:Interp.Rtval.buffer ->
  grid:int list ->
  local_bounds:Typesys.bound list ->
  rank:int ->
  Interp.Rtval.buffer
(** The local buffer for [rank]: every point (interior and halo) filled
    from the global buffer where the global coordinate exists, 0
    elsewhere.  Assumes symmetric ghost margins. *)

val gather_interior :
  ?origin:int list ->
  global:Interp.Rtval.buffer ->
  local:Interp.Rtval.buffer ->
  grid:int list ->
  interior:int list ->
  rank:int ->
  unit ->
  unit
(** Copy the local interior into the global buffer at the rank's offset;
    [origin] shifts local coordinates for buffers rebased to zero after
    lowering. *)

val field_arg_bounds : Op.t -> Typesys.bound list list
(** Bounds of a function's stencil-typed arguments. *)

val local_field_bounds : Op.t -> Typesys.bound list list
(** Localized bounds of the function's field arguments, read from the
    dmp.local_fields attribute left by the distribution pass (survives
    the field-to-memref conversion); falls back to
    {!field_arg_bounds} when the attribute is absent. *)

val topology_of : Op.t -> int list
(** The dmp.topology attribute left by the distribution pass. *)

(* Binding between interpreted IR and an MPI substrate.

   Provides an [Interp.Engine.externs] handler for one rank that implements:
   - the fully lowered ABI: external MPI_* function calls with mpich magic
     constants (what convert-mpi-to-func produces);
   - the mpi dialect ops (so modules can be executed right after
     convert-dmp-to-mpi, before the func lowering);
   - the dmp dialect ops (so distributed stencil programs can be executed
     directly after the distribution pass, validating each lowering stage
     independently).

   Functorized over [Mpi_intf.MPI_CORE], so the same binding drives the
   deterministic fiber simulator (Mpi_sim) and the multicore domain
   runtime (Mpi_par). *)

open Ir

module Make (M : Mpi_intf.MPI_CORE) = struct
  type state = {
    ctx : M.rank_ctx;
    requests : (int, M.request * Interp.Rtval.buffer option) Hashtbl.t;
    mutable next_handle : int;
  }

  let create ctx = { ctx; requests = Hashtbl.create 32; next_handle = 1 }

  let payload_of_buffer (b : Interp.Rtval.buffer) : Mpi_intf.payload =
    match b.Interp.Rtval.data with
    | Interp.Rtval.F a -> Mpi_intf.Floats (Array.copy a)
    | Interp.Rtval.I a -> Mpi_intf.Ints (Array.copy a)

  let store_payload (b : Interp.Rtval.buffer) (p : Mpi_intf.payload) =
    match (b.Interp.Rtval.data, p) with
    | Interp.Rtval.F dst, Mpi_intf.Floats src ->
        Array.blit src 0 dst 0 (min (Array.length src) (Array.length dst))
    | Interp.Rtval.I dst, Mpi_intf.Ints src ->
        Array.blit src 0 dst 0 (min (Array.length src) (Array.length dst))
    | _ -> Interp.Rtval.error "mpi receive: payload kind mismatch"

  let byte_width_of_dtype dtype =
    if dtype = Core.Mpi.Mpich.float || dtype = Core.Mpi.Mpich.int then 4
    else if dtype = Core.Mpi.Mpich.double then 8
    else 8

  let fresh_handle st req buf =
    let h = st.next_handle in
    st.next_handle <- h + 1;
    Hashtbl.replace st.requests h (req, buf);
    h

  let lookup_request st h =
    if h = Core.Mpi.Mpich.request_null then None
    else
      match Hashtbl.find_opt st.requests h with
      | Some rb -> Some rb
      | None -> Interp.Rtval.error "unknown MPI request handle %d" h

  let complete_recv (req, buf) =
    match (M.wait req, buf) with
    | Some payload, Some b -> store_payload b payload
    | _ -> ()

  let reduction_of magic =
    if magic = Core.Mpi.Mpich.sum then `Sum
    else if magic = Core.Mpi.Mpich.max then `Max
    else if magic = Core.Mpi.Mpich.min then `Min
    else Interp.Rtval.error "unknown MPI reduction constant %d" magic

  (* The function-call ABI (convert-mpi-to-func output). *)
  let handle_call st callee (args : Interp.Rtval.t list) :
      Interp.Rtval.t list option =
    let open Interp.Rtval in
    let int_arg i = as_int (List.nth args i) in
    let buf_arg i = as_buffer (List.nth args i) in
    match callee with
    | "MPI_Init" | "MPI_Finalize" -> Some [ Ri 0 ]
    | "MPI_Pcontrol" ->
        (* Positive level opens a named phase span, its negation closes
           it (pack/unpack markers emitted by convert-dmp-to-mpi). *)
        let level = int_arg 0 in
        let name = Core.Mpi.phase_name_of_level level in
        if level > 0 then M.span_begin st.ctx name
        else if level < 0 then M.span_end st.ctx name;
        Some [ Ri 0 ]
    | "MPI_Comm_rank" -> Some [ Ri (M.rank st.ctx) ]
    | "MPI_Comm_size" -> Some [ Ri (M.size st.ctx) ]
    | "MPI_Send" | "MPI_Isend" ->
        let b = buf_arg 0 in
        let count = int_arg 1 and dtype = int_arg 2 in
        let dest = int_arg 3 and tag = int_arg 4 in
        ignore count;
        let bytes = count * byte_width_of_dtype dtype in
        let req = M.isend st.ctx ~dest ~tag ~bytes (payload_of_buffer b) in
        if callee = "MPI_Send" then Some [ Ri 0 ]
        else Some [ Ri (fresh_handle st req None) ]
    | "MPI_Recv" ->
        let b = buf_arg 0 in
        let source = int_arg 3 and tag = int_arg 4 in
        let payload = M.recv st.ctx ~source ~tag in
        store_payload b payload;
        Some [ Ri 0 ]
    | "MPI_Irecv" ->
        let b = buf_arg 0 in
        let source = int_arg 3 and tag = int_arg 4 in
        let req = M.irecv st.ctx ~source ~tag in
        Some [ Ri (fresh_handle st req (Some b)) ]
    | "MPI_Wait" ->
        (match lookup_request st (int_arg 0) with
        | Some rb -> complete_recv rb
        | None -> ());
        Some [ Ri 0 ]
    | "MPI_Test" -> (
        match lookup_request st (int_arg 0) with
        | Some (req, _) -> Some [ Ri (if M.test req then 1 else 0) ]
        | None -> Some [ Ri 1 ])
    | "MPI_Waitall" ->
        let count = int_arg 0 in
        let arr = buf_arg 1 in
        let handles = List.init count (fun i -> as_int (get_linear arr i)) in
        let reqs = List.filter_map (lookup_request st) handles in
        M.waitall (List.map fst reqs);
        List.iter complete_recv reqs;
        Some [ Ri 0 ]
    | "MPI_Barrier" ->
        M.barrier st.ctx;
        Some [ Ri 0 ]
    | "MPI_Reduce" ->
        let sb = buf_arg 0 and rb = buf_arg 1 in
        let op = reduction_of (int_arg 4) in
        let root = int_arg 5 in
        (match M.reduce st.ctx ~root op (payload_of_buffer sb) with
        | Some combined -> store_payload rb combined
        | None -> ());
        Some [ Ri 0 ]
    | "MPI_Allreduce" ->
        let sb = buf_arg 0 and rb = buf_arg 1 in
        let op = reduction_of (int_arg 4) in
        store_payload rb (M.allreduce st.ctx op (payload_of_buffer sb));
        Some [ Ri 0 ]
    | "MPI_Bcast" ->
        let b = buf_arg 0 in
        let root = int_arg 3 in
        let payload = M.bcast st.ctx ~root (payload_of_buffer b) in
        store_payload b payload;
        Some [ Ri 0 ]
    | "MPI_Gather" ->
        let sb = buf_arg 0 and rb = buf_arg 3 in
        let root = int_arg 6 in
        (match M.gather st.ctx ~root (payload_of_buffer sb) with
        | Some parts ->
            let per = num_elements sb in
            List.iteri
              (fun r part ->
                match part with
                | Mpi_intf.Floats src ->
                    Array.iteri
                      (fun i v -> set_linear rb ((r * per) + i) (Rf v))
                      src
                | Mpi_intf.Ints src ->
                    Array.iteri
                      (fun i v -> set_linear rb ((r * per) + i) (Ri v))
                      src)
              parts
        | None -> ());
        Some [ Ri 0 ]
    | _ -> None

  (* The mpi dialect ops (pre func-lowering). *)
  let handle_mpi_dialect st (op : Op.t) (args : Interp.Rtval.t list) :
      Interp.Rtval.t list option =
    let open Interp.Rtval in
    let int_arg i = as_int (List.nth args i) in
    let buf_arg i = as_buffer (List.nth args i) in
    match op.Op.name with
    | "mpi.init" | "mpi.finalize" -> Some []
    | "mpi.pcontrol" ->
        let level = Op.int_attr_exn op "level" in
        let name = Core.Mpi.phase_name_of_level level in
        if level > 0 then M.span_begin st.ctx name
        else if level < 0 then M.span_end st.ctx name;
        Some []
    | "mpi.comm_rank" -> Some [ Ri (M.rank st.ctx) ]
    | "mpi.comm_size" -> Some [ Ri (M.size st.ctx) ]
    | "mpi.send" ->
        M.send st.ctx ~dest: (int_arg 1) ~tag: (int_arg 2)
          (payload_of_buffer (buf_arg 0));
        Some []
    | "mpi.recv" ->
        store_payload (buf_arg 0)
          (M.recv st.ctx ~source: (int_arg 1) ~tag: (int_arg 2));
        Some []
    | "mpi.isend" ->
        let req =
          M.isend st.ctx ~dest: (int_arg 1) ~tag: (int_arg 2)
            (payload_of_buffer (buf_arg 0))
        in
        Some [ Ri (fresh_handle st req None) ]
    | "mpi.irecv" ->
        let req = M.irecv st.ctx ~source: (int_arg 1) ~tag: (int_arg 2) in
        Some [ Ri (fresh_handle st req (Some (buf_arg 0))) ]
    | "mpi.null_request" -> Some [ Ri Core.Mpi.Mpich.request_null ]
    | "mpi.wait" ->
        (match lookup_request st (int_arg 0) with
        | Some rb -> complete_recv rb
        | None -> ());
        Some []
    | "mpi.test" -> (
        match lookup_request st (int_arg 0) with
        | Some (req, _) -> Some [ Ri (if M.test req then 1 else 0) ]
        | None -> Some [ Ri 1 ])
    | "mpi.waitall" ->
        let reqs =
          List.filter_map (fun a -> lookup_request st (as_int a)) args
        in
        M.waitall (List.map fst reqs);
        List.iter complete_recv reqs;
        Some []
    | "mpi.barrier" ->
        M.barrier st.ctx;
        Some []
    | "mpi.allreduce" ->
        let op_kind =
          match Op.attr op "op" with
          | Some (Typesys.String_attr "sum") -> `Sum
          | Some (Typesys.String_attr "max") -> `Max
          | Some (Typesys.String_attr "min") -> `Min
          | _ -> `Sum
        in
        store_payload (buf_arg 1)
          (M.allreduce st.ctx op_kind (payload_of_buffer (buf_arg 0)));
        Some []
    | _ -> None

  (* The dmp dialect: execute swaps directly from their declarative
     attributes (grid + exchanges), using the buffer's logical origin (from
     the "origin" attribute after loop lowering, or zeros before it). *)

  (* Shared geometry helpers for one swap-like op. *)
  let swap_geometry st (op : Op.t) (args : Interp.Rtval.t list) =
    let open Interp.Rtval in
    let buf = as_buffer (List.hd args) in
    let grid = Core.Dmp.grid_of op in
    let exchanges = Core.Dmp.exchanges_of op in
    let origin =
      match Op.attr op "origin" with
      | Some (Typesys.Dense_attr o) -> o
      | _ -> List.map (fun _ -> 0) grid
    in
    let strides = Core.Dmp_to_mpi.grid_strides grid in
    let my = M.rank st.ctx in
    let coords = List.map2 (fun g s -> my / s mod g) grid strides in
    let neighbor_of (e : Typesys.exchange) =
      let nc = List.map2 ( + ) coords e.Typesys.ex_neighbor in
      if List.for_all2 (fun c g -> c >= 0 && c < g) nc grid then
        Some (List.fold_left2 (fun acc c s -> acc + (c * s)) 0 nc strides)
      else None
    in
    (buf, exchanges, origin, neighbor_of)

  let box_size (e : Typesys.exchange) =
    List.fold_left ( * ) 1 e.Typesys.ex_size

  let iter_exchange_box (e : Typesys.exchange) f =
    let rec nest dims coords =
      match dims with
      | [] -> f (List.rev coords)
      | n :: rest ->
          for k = 0 to n - 1 do
            nest rest (k :: coords)
          done
    in
    nest e.Typesys.ex_size []

  let pack_exchange buf origin (e : Typesys.exchange) : Mpi_intf.payload =
    let open Interp.Rtval in
    let arr = Array.make (box_size e) 0. in
    let idx = ref 0 in
    iter_exchange_box e (fun coords ->
        let logical =
          List.mapi
            (fun d k ->
              List.nth origin d
              + List.nth e.Typesys.ex_offset d
              + List.nth e.Typesys.ex_source_offset d
              + k)
            coords
        in
        arr.(!idx) <- as_float (get buf logical);
        incr idx);
    Mpi_intf.Floats arr

  let unpack_exchange buf origin (e : Typesys.exchange) (p : Mpi_intf.payload)
      =
    let open Interp.Rtval in
    let arr =
      match p with
      | Mpi_intf.Floats a -> a
      | Mpi_intf.Ints a -> Array.map float_of_int a
    in
    let idx = ref 0 in
    iter_exchange_box e (fun coords ->
        let logical =
          List.mapi
            (fun d k ->
              List.nth origin d + List.nth e.Typesys.ex_offset d + k)
            coords
        in
        set buf logical (Rf arr.(!idx));
        incr idx)

  let elt_bytes_of (buf : Interp.Rtval.buffer) =
    match buf.Interp.Rtval.elt with
    | Typesys.Float Typesys.F32 -> 4
    | _ -> 8

  (* Post one swap's sends and receives; returns per exchange
     (exchange, recv request option). *)
  let post_swap st buf exchanges origin neighbor_of :
      (Typesys.exchange * M.request option) list =
    List.map
      (fun (e : Typesys.exchange) ->
        match neighbor_of e with
        | None -> (e, None)
        | Some peer ->
            M.span_begin st.ctx "pack";
            let payload = pack_exchange buf origin e in
            M.span_end st.ctx "pack";
            ignore
              (M.isend st.ctx ~dest: peer
                 ~tag: (Core.Dmp_to_mpi.send_tag e)
                 ~bytes: (box_size e * elt_bytes_of buf)
                 payload);
            ( e,
              Some
                (M.irecv st.ctx ~source: peer
                   ~tag: (Core.Dmp_to_mpi.recv_tag e)) ))
      exchanges

  let complete_swap st buf origin pending =
    M.waitall (List.filter_map snd pending);
    List.iter
      (fun (e, req) ->
        match req with
        | None -> ()
        | Some req -> (
            match M.wait req with
            | Some p ->
                M.span_begin st.ctx "unpack";
                unpack_exchange buf origin e p;
                M.span_end st.ctx "unpack"
            | None -> Interp.Rtval.error "dmp swap: missing payload"))
      pending

  let handle_dmp st (op : Op.t) (args : Interp.Rtval.t list) :
      Interp.Rtval.t list option =
    let open Interp.Rtval in
    match op.Op.name with
    | "dmp.swap" ->
        let buf, exchanges, origin, neighbor_of = swap_geometry st op args in
        complete_swap st buf origin
          (post_swap st buf exchanges origin neighbor_of);
        Some []
    | "dmp.swap_begin" ->
        (* Post and hand back request handles: [send; recv] per exchange
           (sends complete eagerly, so their handles are null). *)
        let buf, exchanges, origin, neighbor_of = swap_geometry st op args in
        let pending = post_swap st buf exchanges origin neighbor_of in
        let handles =
          List.concat_map
            (fun (_, req) ->
              match req with
              | None ->
                  [ Ri Core.Mpi.Mpich.request_null;
                    Ri Core.Mpi.Mpich.request_null ]
              | Some r -> [ Ri Core.Mpi.Mpich.request_null;
                            Ri (fresh_handle st r None) ])
            pending
        in
        Some handles
    | "dmp.swap_wait" ->
        let buf, exchanges, origin, _ = swap_geometry st op args in
        let req_handles = List.tl args in
        (* Operand layout: per exchange a (send, recv) handle pair. *)
        let rec pair = function
          | [] -> []
          | _send :: recv :: rest -> recv :: pair rest
          | [ _ ] -> Interp.Rtval.error "dmp.swap_wait: odd request count"
        in
        let recv_handles = pair req_handles in
        List.iter2
          (fun (e : Typesys.exchange) h ->
            match lookup_request st (as_int h) with
            | Some (req, _) -> (
                match M.wait req with
                | Some p ->
                    M.span_begin st.ctx "unpack";
                    unpack_exchange buf origin e p;
                    M.span_end st.ctx "unpack"
                | None -> Interp.Rtval.error "dmp.swap_wait: missing payload")
            | None -> ())
          exchanges recv_handles;
        Some []
    | _ -> None

  (* The combined handler for one rank. *)
  let externs_for (st : state) : Interp.Engine.externs =
   fun op args ->
    match op.Op.name with
    | "func.call" -> (
        match Op.attr op "callee" with
        | Some (Typesys.Symbol_attr callee) -> handle_call st callee args
        | _ -> None)
    | name when String.length name > 4 && String.sub name 0 4 = "mpi." ->
        handle_mpi_dialect st op args
    | name when String.length name > 4 && String.sub name 0 4 = "dmp." ->
        handle_dmp st op args
    | _ -> None
end

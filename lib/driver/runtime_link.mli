(** Binding between interpreted IR and an MPI substrate: an
    {!Interp.Engine.externs} handler for one rank that implements the fully
    lowered MPI_* ABI (with mpich magic constants), the mpi dialect ops,
    and the dmp dialect's declarative swaps — so distributed programs can
    be executed and validated at every lowering stage.

    Functorized over {!Mpi_intf.MPI_CORE}: the same binding drives the
    deterministic fiber simulator ([Mpi_sim]) and the multicore domain
    runtime ([Mpi_par]). *)

module Make (M : Mpi_intf.MPI_CORE) : sig
  type state
  (** Per-rank handler state (request-handle table). *)

  val create : M.rank_ctx -> state

  val externs_for : state -> Interp.Engine.externs
  (** The combined handler for one rank. *)
end

(* SPMD execution of a compiled module on the simulated MPI runtime: every
   rank interprets the same module with its own external-call state, exactly
   as the generated executable would run under mpirun. *)

open Ir

(* Convert a recorded per-rank mpi_sim timeline into Obs trace events
   (one Chrome "process" per rank, logical sequence numbers as
   microsecond timestamps) so rank timelines land in the same exported
   trace as the compiler's pass spans. *)
let timeline_to_obs (comm : Mpi_sim.comm) : unit =
  let ts_of seq = float_of_int seq *. 1e-6 in
  List.iter
    (fun (ev : Mpi_sim.timeline_event) ->
      let pid = ev.Mpi_sim.ev_rank + 1 in
      let ts = ts_of ev.Mpi_sim.seq in
      let cat = "mpi" in
      match ev.Mpi_sim.kind with
      | Mpi_sim.Isend { dest; tag; bytes } ->
          Obs.Trace.instant ~ts ~cat ~pid
            ~args:
              [
                ("src", Obs.Int ev.Mpi_sim.ev_rank);
                ("dst", Obs.Int dest);
                ("tag", Obs.Int tag);
                ("bytes", Obs.Int bytes);
              ]
            (Printf.sprintf "isend->%d" dest)
      | Mpi_sim.Irecv { source; tag } ->
          Obs.Trace.instant ~ts ~cat ~pid
            ~args: [ ("src", Obs.Int source); ("tag", Obs.Int tag) ]
            (Printf.sprintf "irecv<-%d" source)
      | Mpi_sim.Recv_complete { source; tag; bytes } ->
          Obs.Trace.instant ~ts ~cat ~pid
            ~args:
              [
                ("src", Obs.Int source);
                ("tag", Obs.Int tag);
                ("bytes", Obs.Int bytes);
              ]
            (Printf.sprintf "recv<-%d" source)
      | Mpi_sim.Wait_begin what ->
          Obs.Trace.begin_span ~ts ~cat ~pid
            ~args: [ ("what", Obs.Str what) ]
            "wait"
      | Mpi_sim.Wait_end -> Obs.Trace.end_span ~ts ~pid "wait"
      | Mpi_sim.Waitall_begin n ->
          Obs.Trace.begin_span ~ts ~cat ~pid
            ~args: [ ("requests", Obs.Int n) ]
            "waitall"
      | Mpi_sim.Waitall_end -> Obs.Trace.end_span ~ts ~pid "waitall"
      | Mpi_sim.Collective name ->
          Obs.Trace.instant ~ts ~cat ~pid ("collective:" ^ name))
    (Mpi_sim.timeline comm)

(* Run [func] on [ranks] simulated ranks.  [make_args] builds each rank's
   argument list (typically scattered local fields); [collect] receives the
   rank context, its argument list and the function results once the rank
   finishes.  Returns the communicator for traffic inspection.

   [trace] turns on the runtime's per-rank event timeline; [on_timeline]
   (which implies [trace]) receives the communicator after the run, and
   when the Obs sink is installed the timeline is also exported there. *)
let run_spmd ?(trace = false) ?(on_timeline : (Mpi_sim.comm -> unit) option)
    ~(ranks : int) ~(func : string)
    ~(make_args : Mpi_sim.rank_ctx -> Interp.Rtval.t list)
    ?(collect :
        (Mpi_sim.rank_ctx -> Interp.Rtval.t list -> Interp.Rtval.t list -> unit)
        option) (m : Op.t) : Mpi_sim.comm =
  let trace = trace || on_timeline <> None in
  let comm =
    Mpi_sim.run ~trace ~ranks (fun ctx ->
        let st = Runtime_link.create ctx in
        let eng =
          Interp.Engine.create ~externs: (Runtime_link.externs_for st) m
        in
        let args = make_args ctx in
        let results = Interp.Engine.run eng func args in
        match collect with
        | Some f -> f ctx args results
        | None -> ())
  in
  if trace then begin
    (match on_timeline with Some f -> f comm | None -> ());
    if Obs.Trace.enabled () then timeline_to_obs comm
  end;
  comm

(* Serial execution (no MPI): interpret [func] with the given arguments. *)
let run_serial ~(func : string) (m : Op.t) (args : Interp.Rtval.t list) :
    Interp.Rtval.t list =
  let eng = Interp.Engine.create m in
  Interp.Engine.run eng func args

(* Maximum absolute difference between two float buffers, used by
   equivalence checks throughout tests and examples. *)
let max_abs_diff (a : Interp.Rtval.buffer) (b : Interp.Rtval.buffer) : float
    =
  let fa = Interp.Rtval.float_contents a in
  let fb = Interp.Rtval.float_contents b in
  if Array.length fa <> Array.length fb then infinity
  else begin
    let worst = ref 0. in
    Array.iteri
      (fun i v -> worst := Float.max !worst (Float.abs (v -. fb.(i))))
      fa;
    !worst
  end

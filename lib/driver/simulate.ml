(* SPMD execution of a compiled module on an MPI substrate: every rank
   interprets the same module with its own external-call state, exactly as
   the generated executable would run under mpirun.

   Substrate-generic via the [Spmd] functor: [Sim_exec] runs ranks as
   deterministic cooperative fibers (Mpi_sim), [Par_exec] runs each rank
   as an OCaml 5 domain in parallel (Mpi_par).  The top-level [run_spmd]
   keeps its historical simulator-typed signature. *)

open Ir

(* Convert a recorded per-rank timeline into Obs trace events (one Chrome
   "process" per rank; the substrate's [ts] field as the timestamp —
   logical sequence "microseconds" on the simulator, real wall-clock
   seconds on the parallel runtime) so rank timelines land in the same
   exported trace as the compiler's pass spans. *)
let events_to_obs (events : Mpi_intf.timeline_event list) : unit =
  List.iter
    (fun (ev : Mpi_intf.timeline_event) ->
      let pid = ev.Mpi_intf.ev_rank + 1 in
      let ts = ev.Mpi_intf.ts in
      let cat = "mpi" in
      match ev.Mpi_intf.kind with
      | Mpi_intf.Isend { dest; tag; bytes } ->
          Obs.Trace.instant ~ts ~cat ~pid
            ~args:
              [
                ("src", Obs.Int ev.Mpi_intf.ev_rank);
                ("dst", Obs.Int dest);
                ("tag", Obs.Int tag);
                ("bytes", Obs.Int bytes);
              ]
            (Printf.sprintf "isend->%d" dest)
      | Mpi_intf.Irecv { source; tag } ->
          Obs.Trace.instant ~ts ~cat ~pid
            ~args: [ ("src", Obs.Int source); ("tag", Obs.Int tag) ]
            (Printf.sprintf "irecv<-%d" source)
      | Mpi_intf.Recv_complete { source; tag; bytes } ->
          Obs.Trace.instant ~ts ~cat ~pid
            ~args:
              [
                ("src", Obs.Int source);
                ("tag", Obs.Int tag);
                ("bytes", Obs.Int bytes);
              ]
            (Printf.sprintf "recv<-%d" source)
      | Mpi_intf.Wait_begin what ->
          Obs.Trace.begin_span ~ts ~cat ~pid
            ~args: [ ("what", Obs.Str what) ]
            "wait"
      | Mpi_intf.Wait_end -> Obs.Trace.end_span ~ts ~pid "wait"
      | Mpi_intf.Waitall_begin n ->
          Obs.Trace.begin_span ~ts ~cat ~pid
            ~args: [ ("requests", Obs.Int n) ]
            "waitall"
      | Mpi_intf.Waitall_end -> Obs.Trace.end_span ~ts ~pid "waitall"
      | Mpi_intf.Collective name ->
          Obs.Trace.instant ~ts ~cat ~pid ("collective:" ^ name)
      | Mpi_intf.Span_begin name -> Obs.Trace.begin_span ~ts ~cat ~pid name
      | Mpi_intf.Span_end name -> Obs.Trace.end_span ~ts ~pid name)
    events

let timeline_to_obs (comm : Mpi_sim.comm) : unit =
  events_to_obs (Mpi_sim.timeline comm)

(* Substrate-generic SPMD execution.  [make_args] builds each rank's
   argument list (typically scattered local fields); [collect] receives
   the rank context, its argument list and the function results once the
   rank finishes.  On the parallel substrate rank bodies run concurrently,
   so [collect] calls are serialized under a mutex — collectors may write
   into shared (per-rank-disjoint or root-only) structures without their
   own locking, exactly as the fiber-based collectors always have. *)
module Spmd (M : Mpi_intf.MPI_CORE) = struct
  module RL = Runtime_link.Make (M)

  let run_spmd ?(trace = false)
      ?(executor = Interp.Executor.interpreter)
      ?(program : Interp.Executor.shared option) ?(threads = 1)
      ?(on_timeline : (M.comm -> unit) option) ~(ranks : int)
      ~(func : string) ~(make_args : M.rank_ctx -> Interp.Rtval.t list)
      ?(collect :
          (M.rank_ctx -> Interp.Rtval.t list -> Interp.Rtval.t list -> unit)
          option) (m : Op.t) : M.comm =
    let trace = trace || on_timeline <> None in
    let collect_mutex = Mutex.create () in
    (* All per-program work (slot resolution, closure compilation) happens
       ONCE, here, before any rank starts: the shared program is
       rank-independent by construction.  Callers that already hold a
       compiled artifact pass it as [program] and skip even that. *)
    let shared =
      match program with
      | Some p -> p
      | None -> executor.Interp.Executor.compile m
    in
    let comm =
      M.run ~trace ~ranks (fun ctx ->
          let st = RL.create ctx in
          (* Per-rank work: bind this rank's extern handler (its MPI_*
             ABI) to the shared program, and spin up its intra-rank
             worker pool when [threads > 1].  The instance must be
             released even on failure — worker domains are a capped
             resource. *)
          let inst =
            shared.Interp.Executor.instantiate
              ~externs: (RL.externs_for st) ~threads ()
          in
          Fun.protect
            ~finally: (fun () -> inst.Interp.Executor.release ())
            (fun () ->
              let args = make_args ctx in
              let results = inst.Interp.Executor.runf func args in
              match collect with
              | Some f ->
                  Mutex.lock collect_mutex;
                  Fun.protect
                    ~finally: (fun () -> Mutex.unlock collect_mutex)
                    (fun () -> f ctx args results)
              | None -> ()))
    in
    if trace then begin
      (match on_timeline with Some f -> f comm | None -> ());
      if Obs.Trace.enabled () then events_to_obs (M.timeline comm)
    end;
    comm
end

module Sim_exec = Spmd (Mpi_sim)
module Par_exec = Spmd (Mpi_par)

(* The historical simulator-typed entry point. *)
let run_spmd = Sim_exec.run_spmd

(* Parallel execution with transport configuration: each rank is a real
   domain; a stall watchdog (Mpi_par.Stall) replaces the simulator's
   exact deadlock detection. *)
let run_spmd_par ?stall_timeout_s ?queue_capacity ?trace ?executor ?program
    ?threads ?on_timeline ~ranks ~func ~make_args ?collect m =
  Mpi_par.with_defaults ?stall_timeout_s ?queue_capacity (fun () ->
      Par_exec.run_spmd ?trace ?executor ?program ?threads ?on_timeline
        ~ranks ~func ~make_args ?collect m)

(* Serial execution (no MPI): run [func] with the given arguments on the
   chosen executor (the reference interpreter by default). *)
let run_serial ?(executor = Interp.Executor.interpreter) ~(func : string)
    (m : Op.t) (args : Interp.Rtval.t list) : Interp.Rtval.t list =
  executor.Interp.Executor.prepare m func args

(* Maximum absolute difference between two float buffers, used by
   equivalence checks throughout tests and examples. *)
let max_abs_diff (a : Interp.Rtval.buffer) (b : Interp.Rtval.buffer) : float
    =
  let fa = Interp.Rtval.float_contents a in
  let fb = Interp.Rtval.float_contents b in
  if Array.length fa <> Array.length fb then infinity
  else begin
    let worst = ref 0. in
    Array.iteri
      (fun i v -> worst := Float.max !worst (Float.abs (v -. fb.(i))))
      fa;
    !worst
  end

(** End-to-end distributed execution harness: serial reference run,
    distribution + full lowering to MPI_* calls, execution on a chosen
    substrate (simulated fibers or real OCaml 5 domains), interior gather
    and comparison.  Shared by [stencilc --run-par]/[--run-sim], the
    bench [par] section and the parallel-runtime tests. *)

open Ir

type substrate = Sim | Par

type result = {
  ranks : int;
  grid : int list;  (** rank topology chosen by the distribution pass *)
  substrate_name : string;  (** "sim" or "par" *)
  executor_name : string;  (** backend of the distributed run, e.g. "compiled" *)
  overlap : bool;  (** split-phase swaps with interior/boundary overlap *)
  serial_wall_s : float;  (** wall-clock of the serial interpreter run *)
  wall_s : float;  (** wall-clock of the distributed run (incl. scatter/gather) *)
  max_diff_vs_serial : float;
      (** max abs interior difference vs the serial reference *)
  messages : int;
  bytes : int;
  domain : int list;  (** global interior extents *)
  gathered : Interp.Rtval.buffer list;  (** gathered result buffers *)
  serial : Interp.Rtval.buffer list;  (** serial result buffers *)
  analysis : Analysis.report option;
      (** timeline analytics (breakdown, comm matrix, critical path,
          overlap); [Some] iff the run was traced *)
}

val run_distributed :
  ?substrate:substrate ->
  ?strategy:Core.Decomposition.strategy ->
  ?mode:Core.Decomposition.exchange_mode ->
  ?stall_timeout_s:float ->
  ?queue_capacity:int ->
  ?trace:bool ->
  ?executor:Interp.Executor.t ->
  ?seed:int ->
  ?func:string ->
  ?overlap:bool ->
  ?tiles:int list ->
  ?threads_per_rank:int ->
  ranks:int ->
  Op.t ->
  result
(** Run a stencil-dialect module distributed over [ranks].  [func]
    defaults to the first function with a [sym_name]; inputs are
    deterministically initialized from [seed] (default 0); [substrate]
    defaults to {!Sim}.  [mode] (default [Faces]) selects the neighbor
    set halo exchanges cover.  [stall_timeout_s]/[queue_capacity] configure the
    {!Par} transport.  [executor] selects the backend for the
    distributed run (default: reference interpreter); the serial
    reference always runs interpreted, as the oracle.  [overlap]
    (default true) applies the split-phase communication/computation
    overlap transformation before lowering — the executed distributed
    pipeline.  [tiles] (default [[]], untiled) selects cache-block sizes
    for the tiled omp lowering; [threads_per_rank] (default 1) sizes the
    per-rank domain pool the compiled executor schedules [omp.parallel]
    regions onto (the interpreter ignores it — it is the sequential
    oracle).  Every result
    buffer is gathered and compared against its serial counterpart over
    the global interior. *)

val max_result_diff : result -> result -> float
(** Max abs interior difference between two runs' gathered results
    (infinite when the result counts differ) — the cross-substrate
    equivalence check. *)

val interior_diff :
  domain:int list -> Interp.Rtval.buffer -> Interp.Rtval.buffer -> float
(** Max abs difference over the interior [0, domain_d) per dimension. *)

val default_func : Op.t -> string
(** First function symbol in the module. *)

val field_args : Op.t -> string -> (Typesys.ty * Typesys.bound list) list
(** Field (buffer) arguments of a function: (element type, global bounds)
    per buffer argument. *)

val global_field :
  seed:int -> Typesys.ty * Typesys.bound list -> Interp.Rtval.buffer
(** Deterministically initialized global buffer for one field argument. *)

val rebase : Interp.Rtval.buffer -> Interp.Rtval.buffer
(** Alias of a buffer with all logical lower bounds set to zero (the
    memref view of a field). *)

(** SPMD execution of compiled modules on an MPI substrate: every rank
    interprets the same module with its own external-call state, exactly
    as the generated executable would run under mpirun.

    Substrate-generic via {!Spmd}; {!run_spmd} keeps its historical
    simulator-typed signature and {!run_spmd_par} runs each rank as an
    OCaml 5 domain in parallel. *)

open Ir

(** Substrate-generic SPMD execution over any {!Mpi_intf.MPI_CORE}. *)
module Spmd (M : Mpi_intf.MPI_CORE) : sig
  module RL : sig
    type state

    val create : M.rank_ctx -> state
    val externs_for : state -> Interp.Engine.externs
  end

  val run_spmd :
    ?trace:bool ->
    ?executor:Interp.Executor.t ->
    ?program:Interp.Executor.shared ->
    ?threads:int ->
    ?on_timeline:(M.comm -> unit) ->
    ranks:int ->
    func:string ->
    make_args:(M.rank_ctx -> Interp.Rtval.t list) ->
    ?collect:
      (M.rank_ctx -> Interp.Rtval.t list -> Interp.Rtval.t list -> unit) ->
    Op.t ->
    M.comm
  (** Run [func] on [ranks] ranks; [make_args] builds each rank's
      arguments (typically scattered local fields), [collect] receives
      the context, arguments and results when a rank finishes ([collect]
      calls are serialized, so collectors need no locking of their own).
      Returns the communicator for traffic inspection.

      [executor] selects the execution backend (the reference
      interpreter by default).  Per-program preparation — slot
      resolution, closure compilation — happens exactly once, before any
      rank starts; rank bodies only bind their extern handler to the
      shared program.  Callers that already hold a compiled program
      (e.g. from the {!Service.Artifact} cache) pass it as [program] and
      the module argument is not compiled at all.

      [trace] records the runtime's per-rank event timeline; the
      [on_timeline] hook (which implies [trace]) receives the
      communicator once all ranks finish, and when the {!Obs} sink is
      installed the timeline is additionally exported there as one
      Chrome "process" per rank ({!events_to_obs}). *)
end

module Sim_exec : module type of Spmd (Mpi_sim)
module Par_exec : module type of Spmd (Mpi_par)

val run_spmd :
  ?trace:bool ->
  ?executor:Interp.Executor.t ->
  ?program:Interp.Executor.shared ->
  ?threads:int ->
  ?on_timeline:(Mpi_sim.comm -> unit) ->
  ranks:int ->
  func:string ->
  make_args:(Mpi_sim.rank_ctx -> Interp.Rtval.t list) ->
  ?collect:
    (Mpi_sim.rank_ctx -> Interp.Rtval.t list -> Interp.Rtval.t list -> unit) ->
  Op.t ->
  Mpi_sim.comm
(** [Sim_exec.run_spmd]: deterministic cooperative fibers. *)

val run_spmd_par :
  ?stall_timeout_s:float ->
  ?queue_capacity:int ->
  ?trace:bool ->
  ?executor:Interp.Executor.t ->
  ?program:Interp.Executor.shared ->
  ?threads:int ->
  ?on_timeline:(Mpi_par.comm -> unit) ->
  ranks:int ->
  func:string ->
  make_args:(Mpi_par.rank_ctx -> Interp.Rtval.t list) ->
  ?collect:
    (Mpi_par.rank_ctx -> Interp.Rtval.t list -> Interp.Rtval.t list -> unit) ->
  Op.t ->
  Mpi_par.comm
(** [Par_exec.run_spmd] with transport configuration: each rank is a real
    OCaml 5 domain; a stall watchdog ({!Mpi_par.Stall}) replaces the
    simulator's exact deadlock detection. *)

val events_to_obs : Mpi_intf.timeline_event list -> unit
(** Export a recorded timeline into the current Obs sink: pid = rank+1,
    the substrate's [ts] as timestamps (logical on sim, wall-clock on
    par), wait/waitall as spans and messages as instants carrying
    src/dst/tag/bytes edges. *)

val timeline_to_obs : Mpi_sim.comm -> unit
(** [events_to_obs] over a simulator communicator's timeline. *)

val run_serial :
  ?executor:Interp.Executor.t ->
  func:string ->
  Op.t ->
  Interp.Rtval.t list ->
  Interp.Rtval.t list
(** Serial execution (no MPI) of [func] on the chosen executor (the
    reference interpreter by default). *)

val max_abs_diff : Interp.Rtval.buffer -> Interp.Rtval.buffer -> float
(** Equivalence metric used throughout tests and examples (infinite when
    shapes differ). *)

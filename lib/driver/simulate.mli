(** SPMD execution of compiled modules on the simulated MPI runtime: every
    rank interprets the same module with its own external-call state,
    exactly as the generated executable would run under mpirun. *)

open Ir

val run_spmd :
  ?trace:bool ->
  ?on_timeline:(Mpi_sim.comm -> unit) ->
  ranks:int ->
  func:string ->
  make_args:(Mpi_sim.rank_ctx -> Interp.Rtval.t list) ->
  ?collect:
    (Mpi_sim.rank_ctx -> Interp.Rtval.t list -> Interp.Rtval.t list -> unit) ->
  Op.t ->
  Mpi_sim.comm
(** Run [func] on [ranks] simulated ranks; [make_args] builds each rank's
    arguments (typically scattered local fields), [collect] receives the
    context, arguments and results when a rank finishes.  Returns the
    communicator for traffic inspection.

    [trace] records the runtime's deterministic per-rank event timeline;
    the [on_timeline] hook (which implies [trace]) receives the
    communicator once all ranks finish, and when the {!Obs} sink is
    installed the timeline is additionally exported there as one Chrome
    "process" per rank ({!timeline_to_obs}). *)

val timeline_to_obs : Mpi_sim.comm -> unit
(** Export a recorded timeline into the current Obs sink: pid = rank+1,
    logical sequence numbers as timestamps, wait/waitall as spans and
    messages as instants carrying src/dst/tag/bytes edges. *)

val run_serial : func:string -> Op.t -> Interp.Rtval.t list -> Interp.Rtval.t list

val max_abs_diff : Interp.Rtval.buffer -> Interp.Rtval.buffer -> float
(** Equivalence metric used throughout tests and examples (infinite when
    shapes differ). *)

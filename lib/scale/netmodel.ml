(* The replay engine's cost model and its calibration.

   The alpha-beta fit deliberately does NOT pool every matched message
   into one ordinary least squares: on an oversubscribed host a message
   can sit matched-but-unserviced for milliseconds while the receiving
   domain is descheduled, and those stalls correlate with *small*
   late-run messages — pooled OLS then slopes downward (a negative
   per-byte cost) while explaining almost nothing (r² = 0.03 in the
   shipped BENCH_netmodel.json this replaces).  Bucketing by message
   size, rejecting per-bucket latency outliers and constraining the line
   nonnegative yields coefficients that are at least physical; when even
   that cannot be identified the fit fails loudly. *)

type t = {
  alpha_s : float;
  beta_s_per_byte : float;
  compute_s_per_cell : float;
  pack_s_per_byte : float;
  unpack_s_per_byte : float;
  nm_source : string;
}

let default =
  {
    alpha_s = 2e-6;
    beta_s_per_byte = 1e-9;
    compute_s_per_cell = 1e-8;
    pack_s_per_byte = 1e-9;
    unpack_s_per_byte = 1e-9;
    nm_source = "default";
  }

(* Frozen forever: the regression gate compares replayed efficiencies
   produced under this model across machines, so its constants must
   never track any particular host. *)
let reference =
  {
    alpha_s = 1e-6;
    beta_s_per_byte = 5e-10;  (* 2 GB/s *)
    compute_s_per_cell = 5e-9;
    pack_s_per_byte = 5e-10;
    unpack_s_per_byte = 5e-10;
    nm_source = "reference";
  }

let msg_cost m ~bytes = m.alpha_s +. (m.beta_s_per_byte *. float_of_int bytes)

let describe m =
  Printf.sprintf
    "%s: alpha=%.3e s, beta=%.3e s/B, compute=%.3e s/cell, pack=%.3e s/B, \
     unpack=%.3e s/B"
    m.nm_source m.alpha_s m.beta_s_per_byte m.compute_s_per_cell
    m.pack_s_per_byte m.unpack_s_per_byte

let of_spec spec =
  let parse_field m kv =
    match String.index_opt kv '=' with
    | None -> failwith ("netmodel spec: expected key=value, got " ^ kv)
    | Some i ->
        let k = String.trim (String.sub kv 0 i) in
        let vs = String.trim (String.sub kv (i + 1) (String.length kv - i - 1)) in
        let v =
          match float_of_string_opt vs with
          | Some f when f >= 0. && Float.is_finite f -> f
          | _ -> failwith ("netmodel spec: bad value for " ^ k ^ ": " ^ vs)
        in
        (match k with
        | "alpha" -> { m with alpha_s = v }
        | "beta" -> { m with beta_s_per_byte = v }
        | "compute" -> { m with compute_s_per_cell = v }
        | "pack" -> { m with pack_s_per_byte = v }
        | "unpack" -> { m with unpack_s_per_byte = v }
        | _ -> failwith ("netmodel spec: unknown key " ^ k))
  in
  let fields =
    List.filter
      (fun s -> String.trim s <> "")
      (String.split_on_char ',' spec)
  in
  { (List.fold_left parse_field default fields) with nm_source = "spec" }

(* --- calibration --- *)

type bucket = {
  bk_bytes : int;
  bk_samples : int;
  bk_kept : int;
  bk_mean_s : float;
}

type fit = {
  f_alpha_s : float;
  f_beta_s_per_byte : float;
  f_r2 : float;
  f_samples : int;
  f_dropped : int;
  f_buckets : bucket list;
}

let median (xs : float list) =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 0.
  else if n mod 2 = 1 then a.(n / 2)
  else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let fit_alpha_beta ?(outlier_k = 4.) ?(min_buckets = 2) ?(min_kept = 8)
    (samples : Analysis.msg_sample list) : (fit, string) result =
  let by_size : (int, float list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (s : Analysis.msg_sample) ->
      let lat = s.Analysis.ms_recv_ts -. s.Analysis.ms_send_ts in
      if Float.is_finite lat && lat >= 0. then begin
        match Hashtbl.find_opt by_size s.Analysis.ms_bytes with
        | Some l -> l := lat :: !l
        | None -> Hashtbl.add by_size s.Analysis.ms_bytes (ref [ lat ])
      end)
    samples;
  let buckets =
    Hashtbl.fold
      (fun bytes lats acc ->
        let all = !lats in
        let med = median all in
        (* Outlier rejection: latencies beyond [outlier_k] times the
           bucket median are descheduling stalls (time-shared domains),
           not network behavior. *)
        let cutoff = outlier_k *. Float.max med 1e-12 in
        let kept = List.filter (fun l -> l <= cutoff) all in
        let kept = if kept = [] then all else kept in
        let mean =
          List.fold_left ( +. ) 0. kept /. float_of_int (List.length kept)
        in
        {
          bk_bytes = bytes;
          bk_samples = List.length all;
          bk_kept = List.length kept;
          bk_mean_s = mean;
        }
        :: acc)
      by_size []
    |> List.sort (fun a b -> compare a.bk_bytes b.bk_bytes)
  in
  let kept_total = List.fold_left (fun acc b -> acc + b.bk_kept) 0 buckets in
  let dropped =
    List.fold_left (fun acc b -> acc + b.bk_samples - b.bk_kept) 0 buckets
  in
  if buckets = [] then Error "no matched message samples"
  else if List.length buckets < min_buckets then
    Error
      (Printf.sprintf
         "only %d distinct message size(s); %d needed to identify alpha and \
          beta"
         (List.length buckets) min_buckets)
  else if kept_total < min_kept then
    Error
      (Printf.sprintf "only %d sample(s) after outlier rejection; %d needed"
         kept_total min_kept)
  else begin
    (* Weighted least squares over the bucket means, weight = kept count. *)
    let sw, swx, swy =
      List.fold_left
        (fun (sw, swx, swy) b ->
          let w = float_of_int b.bk_kept in
          ( sw +. w,
            swx +. (w *. float_of_int b.bk_bytes),
            swy +. (w *. b.bk_mean_s) ))
        (0., 0., 0.) buckets
    in
    let mx = swx /. sw and my = swy /. sw in
    let sxx, sxy, syy =
      List.fold_left
        (fun (sxx, sxy, syy) b ->
          let w = float_of_int b.bk_kept in
          let dx = float_of_int b.bk_bytes -. mx in
          let dy = b.bk_mean_s -. my in
          (sxx +. (w *. dx *. dx), sxy +. (w *. dx *. dy), syy +. (w *. dy *. dy)))
        (0., 0., 0.) buckets
    in
    let beta = if sxx > 0. then sxy /. sxx else 0. in
    let alpha = my -. (beta *. mx) in
    (* Nonnegativity: project onto the constraint set (for a 2-parameter
       line the active-set solution is one of the two axis fits). *)
    let alpha, beta =
      if beta < 0. then (Float.max 0. my, 0.)
      else if alpha < 0. then begin
        let sxx0, sxy0 =
          List.fold_left
            (fun (sxx0, sxy0) b ->
              let w = float_of_int b.bk_kept in
              let x = float_of_int b.bk_bytes in
              (sxx0 +. (w *. x *. x), sxy0 +. (w *. x *. b.bk_mean_s)))
            (0., 0.) buckets
        in
        (0., if sxx0 > 0. then Float.max 0. (sxy0 /. sxx0) else 0.)
      end
      else (alpha, beta)
    in
    let ss_res =
      List.fold_left
        (fun acc b ->
          let w = float_of_int b.bk_kept in
          let e =
            b.bk_mean_s -. (alpha +. (beta *. float_of_int b.bk_bytes))
          in
          acc +. (w *. e *. e))
        0. buckets
    in
    let r2 = if syy > 0. then 1. -. (ss_res /. syy) else 1. in
    Ok
      {
        f_alpha_s = alpha;
        f_beta_s_per_byte = beta;
        f_r2 = r2;
        f_samples = kept_total;
        f_dropped = dropped;
        f_buckets = buckets;
      }
  end

let of_fit ?(base = default) (f : fit) =
  {
    base with
    alpha_s = f.f_alpha_s;
    beta_s_per_byte = f.f_beta_s_per_byte;
    nm_source = "calibrated";
  }

let calibrate ~compute_cells ~compute_s ~pack_bytes ~pack_s ~unpack_bytes
    ~unpack_s (m : t) =
  let rate work time fallback =
    if work > 0. && time > 0. then time /. work else fallback
  in
  {
    m with
    compute_s_per_cell = rate compute_cells compute_s m.compute_s_per_cell;
    pack_s_per_byte = rate pack_bytes pack_s m.pack_s_per_byte;
    unpack_s_per_byte = rate unpack_bytes unpack_s m.unpack_s_per_byte;
    nm_source = "calibrated";
  }

(* --- rendering --- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fit_json ?(meta = []) (f : (fit, string) result) : string =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n  \"bench\": \"netmodel\",\n";
  List.iter
    (fun (k, v) ->
      Buffer.add_string b
        (Printf.sprintf "  \"%s\": \"%s\",\n" (json_escape k) (json_escape v)))
    meta;
  (match f with
  | Error reason ->
      Buffer.add_string b
        (Printf.sprintf
           "  \"alpha_s\": null,\n  \"beta_s_per_byte\": null,\n\
           \  \"r2\": null,\n  \"samples\": 0,\n  \"fit_error\": \"%s\"\n"
           (json_escape reason))
  | Ok f ->
      Buffer.add_string b
        (Printf.sprintf
           "  \"alpha_s\": %.9g,\n  \"beta_s_per_byte\": %.9g,\n\
           \  \"r2\": %.6f,\n  \"samples\": %d,\n  \"dropped_outliers\": %d,\n"
           f.f_alpha_s f.f_beta_s_per_byte f.f_r2 f.f_samples f.f_dropped);
      Buffer.add_string b "  \"buckets\": [";
      List.iteri
        (fun i bk ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_string b
            (Printf.sprintf
               "{\"bytes\": %d, \"samples\": %d, \"kept\": %d, \"mean_s\": \
                %.9g}"
               bk.bk_bytes bk.bk_samples bk.bk_kept bk.bk_mean_s))
        f.f_buckets;
      Buffer.add_string b "]\n");
  Buffer.add_string b "}\n";
  Buffer.contents b

(** The symbolic per-rank communication schedule of a distributed
    stencil program: what every rank sends, receives and computes each
    timestep, derived from the same passes the executed pipeline runs
    (distribute, swap elimination, optional overlap) WITHOUT executing
    anything — no domains, no interpreter, no payloads.  This is what
    lets the replay engine price a 1024-rank run in milliseconds.

    Message structure mirrors [Dmp_to_mpi] exactly: per exchange
    declaration each rank posts one send toward the neighbor in the
    exchange's direction (tag = base-3 direction encoding) and one
    receive from it, both skipped when the neighbor falls off the
    cartesian grid; a fused swap waits immediately, a split swap
    (overlap) posts at [Swap_begin] and waits at the matching
    [Swap_wait]. *)

open Ir

(** One action in a timestep's body, in program order.  [Compute] covers
    a stencil.apply's output cells; swap items reference the swap table
    by index. *)
type item =
  | Compute of int  (** output cells *)
  | Swap of int  (** fused exchange: post and complete in place *)
  | Swap_begin of int
  | Swap_wait of int

type t = {
  ranks : int;
  grid : int list;  (** cartesian rank topology *)
  steps : int;  (** time-loop trip count *)
  body : item list;  (** one timestep, program order *)
  swaps : Typesys.exchange list array;  (** per swap id *)
  elt_bytes : int;  (** payload element width (4 for f32) *)
  strategy : Core.Decomposition.strategy;
  mode : Core.Decomposition.exchange_mode;
  overlap : bool;
}

val of_module :
  ?strategy:Core.Decomposition.strategy ->
  ?mode:Core.Decomposition.exchange_mode ->
  ?overlap:bool ->
  ranks:int ->
  Op.t ->
  t
(** Distribute + swap-eliminate (+ overlap, default true) a
    stencil-dialect module symbolically and read the schedule off the
    result.  Raises [Ill_formed] when the decomposition is invalid for
    this module (e.g. an extent not divisible by the rank grid). *)

val rank_coords : grid:int list -> int -> int list
(** Cartesian coordinates of a rank in the row-major grid. *)

val rank_sends : t -> swap:int -> rank:int -> (int * int * int) list
(** [(dest, tag, bytes)] of the messages [rank] posts for one swap —
    exchanges whose neighbor exists on the grid. *)

val rank_recvs : t -> swap:int -> rank:int -> (int * int * int) list
(** [(source, tag, bytes)] of the matching receives. *)

val messages_per_step : t -> int
(** Point-to-point messages all ranks post in one timestep. *)

val bytes_per_step : t -> int
val total_messages : t -> int
val total_bytes : t -> int

val cells_per_step : t -> int
(** Output cells one rank computes per timestep (all applies). *)

val pp : Format.formatter -> t -> unit

(* Decomposition auto-tuning by exhaustive replay over a small space.

   The space is tiny (strategies x modes x overlap = at most a dozen
   candidates) and each score is one symbolic schedule extraction plus a
   clock-only replay, so exhaustive search is cheap even at 1024 ranks.
   Enumeration order doubles as the tie-break: the stack's defaults
   (Slice2d, Faces) come first and win unless a candidate is strictly
   cheaper, keeping tuned runs reproducible against existing baselines. *)

open Ir

type candidate = {
  c_strategy : Core.Decomposition.strategy;
  c_mode : Core.Decomposition.exchange_mode;
  c_overlap : bool;
  c_grid : int list;
  c_wall_s : float;
  c_messages_per_step : int;
  c_bytes_per_step : int;
}

type choice = {
  best : candidate;
  considered : candidate list;
  skipped : int;
}

let default_strategies =
  [
    Core.Decomposition.Slice2d;
    Core.Decomposition.Slice1d;
    Core.Decomposition.Slice3d;
  ]

let candidate_name c =
  Printf.sprintf "%s/%s/%s grid %s"
    (Core.Decomposition.strategy_name c.c_strategy)
    (match c.c_mode with
    | Core.Decomposition.Faces -> "faces"
    | Core.Decomposition.Diagonals -> "diagonals")
    (if c.c_overlap then "overlap" else "no-overlap")
    (String.concat "x" (List.map string_of_int c.c_grid))

let schedule_of (c : candidate) ~ranks (m : Op.t) =
  Schedule.of_module ~strategy: c.c_strategy ~mode: c.c_mode
    ~overlap: c.c_overlap ~ranks m

let tune ?(model = Netmodel.default) ?cores
    ?(strategies = default_strategies)
    ?(modes = [ Core.Decomposition.Faces; Core.Decomposition.Diagonals ])
    ?(overlaps = [ false; true ]) ~ranks (m : Op.t) : choice option =
  let skipped = ref 0 in
  let scored = ref [] in
  List.iter
    (fun strategy ->
      List.iter
        (fun mode ->
          List.iter
            (fun overlap ->
              match
                Schedule.of_module ~strategy ~mode ~overlap ~ranks m
              with
              | s ->
                  let p =
                    Replay.run ~model ?cores ~emit_timeline: false s
                  in
                  scored :=
                    {
                      c_strategy = strategy;
                      c_mode = mode;
                      c_overlap = overlap;
                      c_grid = s.Schedule.grid;
                      c_wall_s = p.Replay.p_wall_s;
                      c_messages_per_step = Schedule.messages_per_step s;
                      c_bytes_per_step = Schedule.bytes_per_step s;
                    }
                    :: !scored
              | exception Op.Ill_formed _ -> incr skipped)
            overlaps)
        modes)
    strategies;
  (* Enumeration order is the recency-reversed [!scored]; restore it so
     the fold's strict [<] keeps the earliest candidate on ties. *)
  match List.rev !scored with
  | [] -> None
  | first :: rest ->
      let best =
        List.fold_left
          (fun acc c -> if c.c_wall_s < acc.c_wall_s then c else acc)
          first rest
      in
      let considered =
        List.sort (fun a b -> compare a.c_wall_s b.c_wall_s) (first :: rest)
      in
      Some { best; considered; skipped = !skipped }

(** Discrete-event replay of a {!Schedule} under a {!Netmodel}: predict
    per-rank timelines and wall-clock for rank counts far beyond what the
    host can execute, without spawning a single domain.

    Every rank runs the same program (SPMD), so the replay advances one
    logical clock per rank through the schedule's per-step items; halo
    messages arrive at [sender post time + alpha + beta * bytes] and a
    wait releases when every expected arrival is in.  The emitted
    timeline uses the exact event vocabulary of the measuring substrates
    ([Span_begin "pack"], [Isend], [Waitall_begin], [Recv_complete], ...)
    so {!Analysis.analyze} — phase breakdowns, comm matrix, critical
    path, overlap efficiency — works unchanged on predicted runs. *)

type prediction = {
  p_wall_s : float;  (** slowest rank's clock at the end of the run *)
  p_rank_span_s : float array;
  p_timeline : Mpi_intf.timeline_event list;
      (** [] when the replay ran with [emit_timeline:false] *)
  p_messages : int;  (** point-to-point messages over the whole run *)
  p_bytes : int;
}

val run :
  ?model:Netmodel.t ->
  ?cores:int ->
  ?emit_timeline:bool ->
  Schedule.t ->
  prediction
(** Replay a schedule.  [model] defaults to {!Netmodel.default}.
    [cores] (default: the schedule's rank count, i.e. one core per rank)
    time-shares host-side work: compute, pack, unpack and message
    delivery durations are multiplied by [ranks / cores] when ranks
    exceed cores — this is what
    makes predictions comparable to traced runs on an oversubscribed
    host, and is left at the no-slowdown default for cluster-style
    curves.  [emit_timeline] (default true) can be switched off to skip
    event recording when only the clocks matter (the auto-tuner's inner
    loop). *)

val predicted_efficiency :
  baseline_ranks:int -> baseline_wall_s:float -> ranks:int -> wall_s:float ->
  float
(** Strong-scaling parallel efficiency of a prediction against a
    baseline: [(baseline_wall * baseline_ranks) / (wall * ranks)]. *)

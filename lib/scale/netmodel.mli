(** The pluggable cost model the scale-out replay engine prices runs
    with: an alpha-beta postal model per message (fixed latency plus a
    per-byte transfer cost) and per-unit host rates for compute, halo
    packing and unpacking.

    Models come from three places: {!default} (rough single-host
    constants, used when nothing better is known), {!reference} (frozen
    constants that never change — the machine-independent model the
    bench regression gate replays under), and {!calibrate} /
    {!fit_alpha_beta} (fitted from a real traced [mpi_par] run).

    Calibration replaces the earlier single pooled OLS over every
    matched message (which, fed latencies from oversubscribed runs,
    produced a negative beta and r² ≈ 0.03): samples are bucketed per
    message size, latency outliers within each bucket are dropped
    (domain-descheduling stalls on oversubscribed hosts), the line is
    fitted to the bucket means weighted by kept-sample count, and alpha
    and beta are constrained nonnegative.  A fit that cannot be
    identified fails loudly ({!Error} with the reason) instead of
    emitting nonsense coefficients. *)

type t = {
  alpha_s : float;  (** fixed cost per message (seconds) *)
  beta_s_per_byte : float;  (** transfer cost per payload byte *)
  compute_s_per_cell : float;  (** stencil compute cost per output cell *)
  pack_s_per_byte : float;  (** halo pack cost per byte staged *)
  unpack_s_per_byte : float;  (** halo unpack cost per byte drained *)
  nm_source : string;  (** provenance: "default", "reference", "calibrated", "spec" *)
}

val default : t
val reference : t
(** Frozen constants (never retuned): deterministic replay results
    across machines, for regression-gated scaling curves. *)

val msg_cost : t -> bytes:int -> float
(** [alpha_s + beta_s_per_byte * bytes]. *)

val describe : t -> string

val of_spec : string -> t
(** Parse ["alpha=2e-6,beta=1e-9,compute=5e-9,pack=1e-9,unpack=1e-9"]
    (any subset; unset fields keep {!default}).  Raises [Failure] on an
    unknown key or a malformed/negative number. *)

(** {1 Alpha-beta calibration from matched message samples} *)

type bucket = {
  bk_bytes : int;  (** message size of this bucket *)
  bk_samples : int;  (** samples observed at this size *)
  bk_kept : int;  (** samples surviving outlier rejection *)
  bk_mean_s : float;  (** mean latency of the kept samples *)
}

type fit = {
  f_alpha_s : float;  (** >= 0 *)
  f_beta_s_per_byte : float;  (** >= 0 *)
  f_r2 : float;
      (** coefficient of determination of the constrained line over the
          weighted bucket means — honest: can be <= 0 when the
          constraints bind *)
  f_samples : int;  (** kept samples across all buckets *)
  f_dropped : int;  (** outliers rejected *)
  f_buckets : bucket list;  (** ascending by size *)
}

val fit_alpha_beta :
  ?outlier_k:float ->
  ?min_buckets:int ->
  ?min_kept:int ->
  Analysis.msg_sample list ->
  (fit, string) result
(** Bucketed constrained least squares.  [outlier_k] (default 4.0) drops
    samples whose latency exceeds that multiple of their bucket's
    median; [min_buckets] (default 2) distinct message sizes and
    [min_kept] (default 8) surviving samples are required to identify
    the line — otherwise [Error reason]. *)

val of_fit : ?base:t -> fit -> t
(** Install a fitted alpha/beta into [base] (default {!default});
    [nm_source] becomes ["calibrated"]. *)

val calibrate :
  compute_cells:float ->
  compute_s:float ->
  pack_bytes:float ->
  pack_s:float ->
  unpack_bytes:float ->
  unpack_s:float ->
  t ->
  t
(** Refine host rates of a model from a traced run's phase totals (the
    [Analysis] per-rank breakdown summed over ranks) and the run's known
    work totals; a rate whose work or time total is nonpositive keeps
    the incoming model's value. *)

val fit_json : ?meta:(string * string) list -> (fit, string) result -> string
(** The BENCH_netmodel.json document.  On [Error], alpha/beta/r² are
    emitted as JSON [null] with a ["fit_error"] field naming the reason
    — a degenerate calibration is visible, not papered over. *)

(** The decomposition auto-tuner: enumerate (strategy x exchange mode x
    overlap) candidates for a workload and rank count, price each via
    {!Replay}, and return the cheapest.

    The search space follows the paper's companion work on automated
    MPI code generation: the decomposition and overlap choice dominate
    at scale, and both are mechanical given a cost model.  Candidates
    whose decomposition is invalid for the module (e.g. an extent not
    divisible by the rank grid) are skipped, not errors. *)

open Ir

type candidate = {
  c_strategy : Core.Decomposition.strategy;
  c_mode : Core.Decomposition.exchange_mode;
  c_overlap : bool;
  c_grid : int list;
  c_wall_s : float;  (** replayed cost *)
  c_messages_per_step : int;
  c_bytes_per_step : int;
}

type choice = {
  best : candidate;
  considered : candidate list;  (** every scored candidate, cheapest first *)
  skipped : int;  (** candidates invalid for this module *)
}

val default_strategies : Core.Decomposition.strategy list
(** Slice1d, Slice2d, Slice3d. *)

val candidate_name : candidate -> string
(** e.g. ["slice2d/faces/overlap grid 4x2"]. *)

val tune :
  ?model:Netmodel.t ->
  ?cores:int ->
  ?strategies:Core.Decomposition.strategy list ->
  ?modes:Core.Decomposition.exchange_mode list ->
  ?overlaps:bool list ->
  ranks:int ->
  Op.t ->
  choice option
(** Score every valid candidate for a stencil-dialect module at a rank
    count; [None] when no candidate is valid.  Defaults: all slicing
    strategies, both exchange modes, overlap both off and on, the
    {!Netmodel.default} model, one core per rank (no host
    time-sharing — tuning targets the deployment machine, not this
    host).  Ties go to the earliest candidate in enumeration order,
    which lists [Slice2d]/[Faces] first so the tuner only departs from
    the stack's defaults when the model predicts a strict win. *)

val schedule_of : candidate -> ranks:int -> Op.t -> Schedule.t
(** Re-derive the schedule of a scored candidate (for reporting). *)

(* The discrete-event replay engine.

   One logical clock per rank advances through the schedule's items in
   program order.  Because the program is SPMD and the substrates match
   FIFO per (src, dst, tag), the k-th swap item on one rank pairs with
   the k-th swap item on its neighbors, so each swap can be resolved in
   two phases across all ranks — first every rank's sends are posted,
   then every rank's waits are released against the recorded post times
   — without a general event queue. *)

type prediction = {
  p_wall_s : float;
  p_rank_span_s : float array;
  p_timeline : Mpi_intf.timeline_event list;
  p_messages : int;
  p_bytes : int;
}

let predicted_efficiency ~baseline_ranks ~baseline_wall_s ~ranks ~wall_s =
  if wall_s <= 0. || ranks <= 0 then 0.
  else
    baseline_wall_s *. float_of_int baseline_ranks
    /. (wall_s *. float_of_int ranks)

(* Event-kind ordering for equal timestamps: a send must precede the
   completion of the receive it matches even under a zero-cost model. *)
let kind_order (k : Mpi_intf.event_kind) =
  match k with Mpi_intf.Recv_complete _ -> 1 | _ -> 0

let run ?(model = Netmodel.default) ?cores ?(emit_timeline = true)
    (s : Schedule.t) : prediction =
  let ranks = s.Schedule.ranks in
  let cores = match cores with Some c -> max 1 c | None -> ranks in
  (* Time-sharing slowdown of host-side work when ranks exceed cores. *)
  let slow = Float.max 1. (float_of_int ranks /. float_of_int cores) in
  let compute_s cells =
    float_of_int cells *. model.Netmodel.compute_s_per_cell *. slow
  in
  let pack_s bytes =
    float_of_int bytes *. model.Netmodel.pack_s_per_byte *. slow
  in
  let unpack_s bytes =
    float_of_int bytes *. model.Netmodel.unpack_s_per_byte *. slow
  in
  let n_swaps = Array.length s.Schedule.swaps in
  (* Per (swap, rank) message lists, fixed across steps. *)
  let sends =
    Array.init n_swaps (fun swap ->
        Array.init ranks (fun rank -> Schedule.rank_sends s ~swap ~rank))
  in
  let recvs =
    Array.init n_swaps (fun swap ->
        Array.init ranks (fun rank -> Schedule.rank_recvs s ~swap ~rank))
  in
  let send_bytes = Array.map (Array.map (List.fold_left (fun a (_, _, b) -> a + b) 0)) sends in
  let recv_bytes = Array.map (Array.map (List.fold_left (fun a (_, _, b) -> a + b) 0)) recvs in
  let clock = Array.make ranks 0. in
  (* Send-post times of the current in-flight instance of each swap. *)
  let post = Array.make_matrix n_swaps ranks 0. in
  (* Per-rank event accumulators (reverse order). *)
  let events : (float * Mpi_intf.event_kind) list array = Array.make ranks [] in
  let emit r ts kind = if emit_timeline then events.(r) <- (ts, kind) :: events.(r) in
  let post_swap swap r =
    let pb = send_bytes.(swap).(r) in
    if pb > 0 then begin
      emit r clock.(r) (Mpi_intf.Span_begin "pack");
      clock.(r) <- clock.(r) +. pack_s pb;
      emit r clock.(r) (Mpi_intf.Span_end "pack")
    end;
    List.iter
      (fun (dest, tag, bytes) ->
        emit r clock.(r) (Mpi_intf.Isend { dest; tag; bytes }))
      sends.(swap).(r);
    List.iter
      (fun (source, tag, _) -> emit r clock.(r) (Mpi_intf.Irecv { source; tag }))
      recvs.(swap).(r);
    post.(swap).(r) <- clock.(r)
  in
  let wait_swap swap r =
    let rs = recvs.(swap).(r) in
    let n_req = List.length sends.(swap).(r) + List.length rs in
    if n_req > 0 then begin
      let t0 = clock.(r) in
      emit r t0 (Mpi_intf.Waitall_begin n_req);
      let arrivals =
        List.map
          (fun (source, tag, bytes) ->
            (* Message latency also stretches under time-sharing: the
               sender and receiver domains must each get scheduled for
               the transfer to progress, so delivery slows by the same
               factor as host-side work.  On a cluster-style replay
               (cores >= ranks) [slow] is 1 and this is the pure
               postal-model cost. *)
            let a =
              post.(swap).(source)
              +. (Netmodel.msg_cost model ~bytes *. slow)
            in
            ((source, tag, bytes), Float.max t0 a))
          rs
        |> List.sort (fun (_, a) (_, b) -> compare a b)
      in
      List.iter
        (fun ((source, tag, bytes), a) ->
          emit r a (Mpi_intf.Recv_complete { source; tag; bytes }))
        arrivals;
      let t_end =
        List.fold_left (fun acc (_, a) -> Float.max acc a) t0 arrivals
      in
      clock.(r) <- t_end;
      emit r t_end Mpi_intf.Waitall_end;
      let ub = recv_bytes.(swap).(r) in
      if ub > 0 then begin
        emit r clock.(r) (Mpi_intf.Span_begin "unpack");
        clock.(r) <- clock.(r) +. unpack_s ub;
        emit r clock.(r) (Mpi_intf.Span_end "unpack")
      end
    end
  in
  for _step = 1 to s.Schedule.steps do
    List.iter
      (fun (item : Schedule.item) ->
        match item with
        | Schedule.Compute cells ->
            for r = 0 to ranks - 1 do
              clock.(r) <- clock.(r) +. compute_s cells
            done
        | Schedule.Swap_begin swap ->
            for r = 0 to ranks - 1 do
              post_swap swap r
            done
        | Schedule.Swap_wait swap ->
            for r = 0 to ranks - 1 do
              wait_swap swap r
            done
        | Schedule.Swap swap ->
            (* Two phases: all posts land before any wait resolves. *)
            for r = 0 to ranks - 1 do
              post_swap swap r
            done;
            for r = 0 to ranks - 1 do
              wait_swap swap r
            done)
      s.Schedule.body
  done;
  let wall = Array.fold_left Float.max 0. clock in
  let timeline =
    if not emit_timeline then []
    else begin
      (* Merge per-rank streams into one global sequence: order by
         timestamp, sends before matching completions on ties, then by
         (rank, within-rank order). *)
      let all = ref [] in
      Array.iteri
        (fun r evs ->
          List.iteri
            (fun i (ts, kind) -> all := (ts, kind_order kind, r, -i, kind) :: !all)
            evs)
        events;
      let sorted =
        List.sort
          (fun (ts1, k1, r1, i1, _) (ts2, k2, r2, i2, _) ->
            compare (ts1, k1, r1, i1) (ts2, k2, r2, i2))
          !all
      in
      List.mapi
        (fun seq (ts, _, r, _, kind) ->
          { Mpi_intf.seq; ts; ev_rank = r; kind })
        sorted
    end
  in
  {
    p_wall_s = wall;
    p_rank_span_s = Array.copy clock;
    p_timeline = timeline;
    p_messages = Schedule.total_messages s;
    p_bytes = Schedule.total_bytes s;
  }

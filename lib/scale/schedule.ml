(* Extract the communication schedule of a distributed stencil program
   symbolically.  We run exactly the pass prefix the executed
   distributed-cpu pipeline runs (shape inference, distribute, redundant
   swap elimination, overlap) and then read the per-timestep structure
   off the dmp ops still in the IR, before any loop or MPI lowering.
   The result is size-independent in rank count: one pass run describes
   every rank of an SPMD program, so pricing 1024 ranks costs the same
   as pricing 4. *)

open Ir

type item = Compute of int | Swap of int | Swap_begin of int | Swap_wait of int

type t = {
  ranks : int;
  grid : int list;
  steps : int;
  body : item list;
  swaps : Typesys.exchange list array;
  elt_bytes : int;
  strategy : Core.Decomposition.strategy;
  mode : Core.Decomposition.exchange_mode;
  overlap : bool;
}

(* Integer constants of the module, for resolving scf.for bounds. *)
let constant_table (m : Op.t) : (int, int) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  Op.walk
    (fun op ->
      match Dialects.Arith.const_int_value op with
      | Some n ->
          List.iter (fun r -> Hashtbl.replace tbl (Value.id r) n) op.Op.results
      | None -> ())
    m;
  tbl

let trip_count tbl (for_op : Op.t) =
  let lo, hi, step, _ = Dialects.Scf.for_bounds for_op in
  let find v = Hashtbl.find_opt tbl (Value.id v) in
  match (find lo, find hi, find step) with
  | Some lo, Some hi, Some step when step > 0 && hi > lo ->
      Some ((hi - lo + step - 1) / step)
  | _ -> None

let is_dmp op =
  let n = op.Op.name in
  n = Core.Dmp.swap || n = Core.Dmp.swap_begin || n = Core.Dmp.swap_wait

(* Program-order visit of a block's ops, descending into regions. *)
let rec in_order f (ops : Op.t list) =
  List.iter
    (fun (op : Op.t) ->
      f op;
      List.iter (fun r -> List.iter (in_order f) (List.map (fun (b : Op.block) -> b.Op.ops) r.Op.blocks)) op.Op.regions)
    ops

let apply_cells (op : Op.t) =
  match op.Op.results with
  | r :: _ -> (
      match Typesys.bounds_of (Value.ty r) with
      | Some bs ->
          List.fold_left (fun acc b -> acc * Typesys.bound_size b) 1 bs
      | None -> 0)
  | [] -> 0

let apply_elt_bytes (op : Op.t) =
  match op.Op.results with
  | r :: _ -> (
      match Typesys.element_of (Value.ty r) with
      | Some e -> ( try Typesys.byte_width e with _ -> 4)
      | None -> 4)
  | [] -> 4

let of_module ?(strategy = Core.Decomposition.Slice2d)
    ?(mode = Core.Decomposition.Faces) ?(overlap = true) ~ranks (m : Op.t) : t
    =
  let dm =
    m
    |> Core.Shape_inference.run
    |> Core.Distribute.run (Core.Distribute.options ~mode ~ranks ~strategy ())
    |> Core.Swap_elim.run
    |> fun dm -> if overlap then Core.Overlap.run dm else dm
  in
  let fop =
    match
      List.find_opt
        (fun (op : Op.t) -> Op.attr op "dmp.topology" <> None)
        (Op.module_ops dm)
    with
    | Some f -> f
    | None -> Op.ill_formed "schedule: no distributed function in module"
  in
  let grid =
    match Op.attr fop "dmp.topology" with
    | Some (Typesys.Grid_attr g) -> g
    | _ -> Op.ill_formed "schedule: dmp.topology is not a grid"
  in
  let tbl = constant_table dm in
  (* The time loop: the first scf.for whose body contains a dmp op (or,
     failing that, a stencil.apply — a swapless single-rank program).
     Without one, the whole function body is a single step. *)
  let time_loop = ref None in
  Op.walk
    (fun op ->
      if !time_loop = None && op.Op.name = Dialects.Scf.for_ then
        let has_work = ref false in
        Op.walk_regions
          (fun o ->
            if is_dmp o || o.Op.name = Core.Stencil.apply then has_work := true)
          op;
        if !has_work then time_loop := Some op)
    fop;
  let steps, body_ops =
    match !time_loop with
    | Some lp ->
        let steps = match trip_count tbl lp with Some n -> n | None -> 1 in
        let ops =
          match lp.Op.regions with
          | r :: _ -> (Op.single_block r).Op.ops
          | [] -> []
        in
        (steps, ops)
    | None -> (
        ( 1,
          match fop.Op.regions with
          | r :: _ -> (Op.single_block r).Op.ops
          | [] -> [] ))
  in
  let swaps = ref [] and n_swaps = ref 0 in
  let register exs =
    let id = !n_swaps in
    incr n_swaps;
    swaps := exs :: !swaps;
    id
  in
  let body = ref [] in
  (* Split-phase pairs match FIFO: waits complete begins in post order,
     mirroring the request lists threaded through the lowering. *)
  let begun = Queue.create () in
  let elt_bytes = ref 0 in
  in_order
    (fun op ->
      if op.Op.name = Core.Stencil.apply then begin
        if !elt_bytes = 0 then elt_bytes := apply_elt_bytes op;
        body := Compute (apply_cells op) :: !body
      end
      else if op.Op.name = Core.Dmp.swap then
        body := Swap (register (Core.Dmp.exchanges_of op)) :: !body
      else if op.Op.name = Core.Dmp.swap_begin then begin
        let id = register (Core.Dmp.exchanges_of op) in
        Queue.push id begun;
        body := Swap_begin id :: !body
      end
      else if op.Op.name = Core.Dmp.swap_wait then begin
        let id = try Queue.pop begun with Queue.Empty -> 0 in
        body := Swap_wait id :: !body
      end)
    body_ops;
  {
    ranks;
    grid;
    steps;
    body = List.rev !body;
    swaps = Array.of_list (List.rev !swaps);
    elt_bytes = (if !elt_bytes = 0 then 4 else !elt_bytes);
    strategy;
    mode;
    overlap;
  }

(* --- per-rank message derivation (mirrors Dmp_to_mpi exactly) --- *)

let rank_coords ~grid rank =
  let strides = Core.Dmp_to_mpi.grid_strides grid in
  List.map2 (fun g s -> rank / s mod g) grid strides

let rank_of_coords ~grid coords =
  let strides = Core.Dmp_to_mpi.grid_strides grid in
  List.fold_left2 (fun acc c s -> acc + (c * s)) 0 coords strides

let neighbor_rank ~grid coords (v : int list) =
  let n = List.map2 ( + ) coords v in
  if List.for_all2 (fun c g -> c >= 0 && c < g) n grid then
    Some (rank_of_coords ~grid n)
  else None

let exchange_bytes (s : t) (e : Typesys.exchange) =
  Core.Dmp_to_mpi.product e.Typesys.ex_size * s.elt_bytes

let rank_sends (s : t) ~swap ~rank =
  let coords = rank_coords ~grid: s.grid rank in
  List.filter_map
    (fun (e : Typesys.exchange) ->
      match neighbor_rank ~grid: s.grid coords e.Typesys.ex_neighbor with
      | Some dest -> Some (dest, Core.Dmp_to_mpi.send_tag e, exchange_bytes s e)
      | None -> None)
    s.swaps.(swap)

let rank_recvs (s : t) ~swap ~rank =
  let coords = rank_coords ~grid: s.grid rank in
  List.filter_map
    (fun (e : Typesys.exchange) ->
      match neighbor_rank ~grid: s.grid coords e.Typesys.ex_neighbor with
      | Some src -> Some (src, Core.Dmp_to_mpi.recv_tag e, exchange_bytes s e)
      | None -> None)
    s.swaps.(swap)

let messages_per_step (s : t) =
  let n = ref 0 in
  for rank = 0 to s.ranks - 1 do
    for swap = 0 to Array.length s.swaps - 1 do
      n := !n + List.length (rank_sends s ~swap ~rank)
    done
  done;
  !n

let bytes_per_step (s : t) =
  let n = ref 0 in
  for rank = 0 to s.ranks - 1 do
    for swap = 0 to Array.length s.swaps - 1 do
      List.iter (fun (_, _, b) -> n := !n + b) (rank_sends s ~swap ~rank)
    done
  done;
  !n

let total_messages (s : t) = s.steps * messages_per_step s
let total_bytes (s : t) = s.steps * bytes_per_step s

let cells_per_step (s : t) =
  List.fold_left
    (fun acc -> function Compute c -> acc + c | _ -> acc)
    0 s.body

let pp fmt (s : t) =
  Format.fprintf fmt
    "@[<v>schedule: %d ranks on grid %s, %d steps, %d swap(s), %d msgs/step \
     (%d B), %d cells/step/rank@]"
    s.ranks
    (String.concat "x" (List.map string_of_int s.grid))
    s.steps (Array.length s.swaps) (messages_per_step s) (bytes_per_step s)
    (cells_per_step s)

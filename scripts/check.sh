#!/bin/sh
# Repo check: formatting, full build, full test suite, and a smoke run of
# the parallel (OCaml-domains) execution path on both the CLI and the
# bench harness.
# Run from anywhere; operates on the repo root.
set -eu
cd "$(dirname "$0")/.."
root="$(pwd)"
dune build @fmt
dune build
dune runtest
# Parallel runtime smoke: distribute + execute the heat2d demo on real
# domains and check the gathered result against the serial reference
# (stencilc exits non-zero on any divergence).  Overlap (split-phase
# swaps) is on by default — this exercises the executed overlap path;
# the --overlap=false runs cover the fused-swap ablation.
dune exec bin/stencilc.exe -- --demo heat2d --run-par 2 > /dev/null
dune exec bin/stencilc.exe -- --demo heat2d --run-par 4 > /dev/null
dune exec bin/stencilc.exe -- --demo heat2d --run-par 2 --overlap=false > /dev/null
# Compiled-executor smoke: the closure-compiled backend must agree with
# the serial interpreter bitwise (stencilc exits non-zero otherwise).
dune exec bin/stencilc.exe -- --demo heat2d --run-par 2 --exec=compiled > /dev/null
dune exec bin/stencilc.exe -- --demo heat2d --run-sim 2 --exec=interp > /dev/null
dune exec bin/stencilc.exe -- --demo heat2d --run-sim 4 --exec=compiled --overlap=false > /dev/null
# Bench par section, smoke sizes: sim vs par cross-check, BENCH_par.json.
dune exec bench/main.exe -- par --smoke > /dev/null
# Bench exec section, smoke sizes: interp vs compiled, BENCH_exec.json.
dune exec bench/main.exe -- exec --smoke > /dev/null
# Bench artifacts must land at the repo root regardless of the cwd the
# binary runs from (the writers resolve paths against the root).
tmpdir="$(mktemp -d)"
rm -f "$root/BENCH_exec.json"
(cd "$tmpdir" && "$root/_build/default/bench/main.exe" exec --smoke > /dev/null)
test -f "$root/BENCH_exec.json" || {
  echo "check.sh: BENCH_exec.json did not land at the repo root" >&2
  exit 1
}
if ls "$tmpdir"/BENCH_*.json > /dev/null 2>&1; then
  echo "check.sh: bench artifacts leaked into the run cwd" >&2
  exit 1
fi
rmdir "$tmpdir"
echo "check.sh: all checks passed"

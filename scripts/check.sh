#!/bin/sh
# Repo check: formatting, full build, full test suite, and a smoke run of
# the parallel (OCaml-domains) execution path on both the CLI and the
# bench harness.
# Run from anywhere; operates on the repo root.
set -eu
cd "$(dirname "$0")/.."
dune build @fmt
dune build
dune runtest
# Parallel runtime smoke: distribute + execute the heat2d demo on real
# domains and check the gathered result against the serial reference
# (stencilc exits non-zero on any divergence).
dune exec bin/stencilc.exe -- --demo heat2d --run-par 2 > /dev/null
dune exec bin/stencilc.exe -- --demo heat2d --run-par 4 > /dev/null
# Compiled-executor smoke: the closure-compiled backend must agree with
# the serial interpreter bitwise (stencilc exits non-zero otherwise).
dune exec bin/stencilc.exe -- --demo heat2d --run-par 2 --exec=compiled > /dev/null
dune exec bin/stencilc.exe -- --demo heat2d --run-sim 2 --exec=interp > /dev/null
# Bench par section, smoke sizes: sim vs par cross-check, BENCH_par.json.
dune exec bench/main.exe -- par --smoke > /dev/null
# Bench exec section, smoke sizes: interp vs compiled, BENCH_exec.json.
dune exec bench/main.exe -- exec --smoke > /dev/null
echo "check.sh: all checks passed"

#!/bin/sh
# Repo check: formatting, full build, full test suite.
# Run from anywhere; operates on the repo root.
set -eu
cd "$(dirname "$0")/.."
dune build @fmt
dune build
dune runtest

#!/bin/sh
# Repo check: formatting, full build, full test suite, a smoke run of the
# parallel (OCaml-domains) execution path on both the CLI and the bench
# harness, and the benchmark regression gate (fresh smoke numbers vs the
# checked-in baselines under bench/baselines/).
# Run from anywhere; operates on the repo root.
#
# Usage: check.sh [--smoke]
#   --smoke   skip the heavier 4-rank CLI smokes (CI mode); the build,
#             tests, 2-rank smokes, benches and regression gate all still
#             run.
set -eu
cd "$(dirname "$0")/.."
root="$(pwd)"

smoke=0
for arg in "$@"; do
  case "$arg" in
    --smoke) smoke=1 ;;
    *) echo "check.sh: unknown argument $arg" >&2; exit 2 ;;
  esac
done

dune build @fmt
dune build
dune runtest
# Parallel runtime smoke: distribute + execute the heat2d demo on real
# domains and check the gathered result against the serial reference
# (stencilc exits non-zero on any divergence).  Overlap (split-phase
# swaps) is on by default — this exercises the executed overlap path;
# the --overlap=false runs cover the fused-swap ablation.
dune exec bin/stencilc.exe -- --demo heat2d --run-par 2 > /dev/null
dune exec bin/stencilc.exe -- --demo heat2d --run-par 2 --overlap=false > /dev/null
# Compiled-executor smoke: the closure-compiled backend must agree with
# the serial interpreter bitwise (stencilc exits non-zero otherwise).
dune exec bin/stencilc.exe -- --demo heat2d --run-par 2 --exec=compiled > /dev/null
dune exec bin/stencilc.exe -- --demo heat2d --run-sim 2 --exec=interp > /dev/null
# Threaded-executor smoke: each rank runs a 2-wide domain pool over the
# cache-tiled omp.parallel lowering; the gathered result must still match
# the serial interpreter bitwise.
dune exec bin/stencilc.exe -- --demo heat2d --run-par 2 --threads-per-rank 2 --tile 8,8 > /dev/null
if [ "$smoke" -eq 0 ]; then
  dune exec bin/stencilc.exe -- --demo heat2d --run-par 4 > /dev/null
  dune exec bin/stencilc.exe -- --demo heat2d --run-sim 4 --exec=compiled --overlap=false > /dev/null
fi
# Compile-service smoke: --serve must answer a compile request twice with
# the same digest — a miss then a hit — and execute a cached run exactly.
serve_out="$(printf 'compile demo=heat2d ranks=2\ncompile demo=heat2d ranks=2\nrun demo=heat2d ranks=2 substrate=sim\nquit\n' \
  | dune exec bin/stencilc.exe -- --serve)"
case "$serve_out" in
  *"cached=miss"*) ;;
  *) echo "check.sh: --serve first compile was not a cache miss" >&2; exit 1 ;;
esac
case "$serve_out" in
  *"cached=hit"*) ;;
  *) echo "check.sh: --serve repeat compile was not a cache hit" >&2; exit 1 ;;
esac
case "$serve_out" in
  *"max_diff=0"*) ;;
  *) echo "check.sh: --serve run diverged from serial" >&2; exit 1 ;;
esac
# Framing regression: a malformed request that declares an ir= payload
# must drain exactly those bytes — the following ping must still answer
# pong instead of the payload being parsed as commands.
desync_out="$(printf 'compile ir=5 demo=heat2d ranks=2\nhelloping\nquit\n' \
  | dune exec bin/stencilc.exe -- --serve)"
case "$desync_out" in
  *"ok pong"*) ;;
  *) echo "check.sh: --serve desynced after a malformed ir= request" >&2; exit 1 ;;
esac

# Socket-daemon smoke: start a Unix-socket daemon with a throwaway
# artifact store, hit it with two concurrent clients requesting the same
# digest, and check one compiled cold while the other was answered from
# the cache (miss+hit in some order across the two).  The daemon and the
# clients run the built binary directly: dune exec holds the build lock
# for the life of the program, so a dune-exec'd daemon would deadlock
# every dune-exec'd client.
stencilc="$root/_build/default/bin/stencilc.exe"
sockdir="$(mktemp -d)"
sock="$sockdir/stencilc.sock"
"$stencilc" --serve --socket "$sock" --store "$sockdir/store" \
  > "$sockdir/daemon.log" 2>&1 &
daemon_pid=$!
i=0
while [ ! -S "$sock" ] && [ "$i" -lt 100 ]; do
  sleep 0.1; i=$((i + 1))
done
test -S "$sock" || {
  echo "check.sh: socket daemon never created $sock" >&2
  cat "$sockdir/daemon.log" >&2
  kill "$daemon_pid" 2> /dev/null || true
  rm -rf "$sockdir"
  exit 1
}
printf 'compile demo=heat2d ranks=2\n' \
  | "$stencilc" --connect "$sock" > "$sockdir/c1.out" &
c1=$!
printf 'compile demo=heat2d ranks=2\n' \
  | "$stencilc" --connect "$sock" > "$sockdir/c2.out" &
c2=$!
wait "$c1" "$c2"
printf 'shutdown\n' | "$stencilc" --connect "$sock" > /dev/null
wait "$daemon_pid" || {
  echo "check.sh: socket daemon exited non-zero" >&2
  cat "$sockdir/daemon.log" >&2
  rm -rf "$sockdir"
  exit 1
}
both="$(cat "$sockdir/c1.out" "$sockdir/c2.out")"
case "$both" in
  *"cached=miss"*) ;;
  *) echo "check.sh: socket daemon: no client saw the cold compile" >&2
     rm -rf "$sockdir"; exit 1 ;;
esac
case "$both" in
  *"cached=hit"*) ;;
  *) echo "check.sh: socket daemon: no client was answered from the cache" >&2
     rm -rf "$sockdir"; exit 1 ;;
esac
ls "$sockdir/store"/*.art > /dev/null 2>&1 || {
  echo "check.sh: socket daemon persisted nothing to the artifact store" >&2
  rm -rf "$sockdir"
  exit 1
}
rm -rf "$sockdir"

# Timeline-analytics smoke: --report must print the per-rank breakdown,
# the comm matrix, a critical path and an overlap figure.
report="$(dune exec bin/stencilc.exe -- --demo heat2d --run-sim 4 --report)"
for section in "phase breakdown" "comm matrix" "critical path" "overlap:" \
  "network model"; do
  case "$report" in
    *"$section"*) ;;
    *) echo "check.sh: --report output is missing '$section'" >&2; exit 1 ;;
  esac
done

# Auto-tuner smoke: --autotune must enumerate decomposition candidates
# at a rank count far beyond this host and commit to one.
tune_out="$(dune exec bin/stencilc.exe -- --demo heat2d --autotune 64)"
case "$tune_out" in
  *"chosen:"*) ;;
  *) echo "check.sh: --autotune did not choose a decomposition" >&2; exit 1 ;;
esac

# Bench smokes write into a scratch dir (never clobbering the committed
# full-size BENCH_*.json at the repo root), then the regression gate
# compares them against the checked-in baselines.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
dune exec bench/main.exe -- par --smoke --out-dir "$tmpdir" > /dev/null
dune exec bench/main.exe -- exec --smoke --out-dir "$tmpdir" > /dev/null
dune exec bench/main.exe -- compile --smoke --out-dir "$tmpdir" > /dev/null
dune exec bench/main.exe -- scale --smoke --out-dir "$tmpdir" > /dev/null
test -f "$tmpdir/BENCH_netmodel.json" || {
  echo "check.sh: bench par did not emit BENCH_netmodel.json" >&2
  exit 1
}
test -f "$tmpdir/BENCH_scaling.json" || {
  echo "check.sh: bench scale did not emit BENCH_scaling.json" >&2
  exit 1
}
dune exec bench/main.exe -- regress --current "$tmpdir"

# Bench artifacts must land at the repo root regardless of the cwd the
# binary runs from (the writers resolve paths against the root).  The
# committed artifact is saved and restored: this check only probes path
# resolution.
saved="$tmpdir/BENCH_exec.json.saved"
cp "$root/BENCH_exec.json" "$saved"
rm -f "$root/BENCH_exec.json"
rundir="$tmpdir/rundir"
mkdir "$rundir"
(cd "$rundir" && "$root/_build/default/bench/main.exe" exec --smoke > /dev/null)
test -f "$root/BENCH_exec.json" || {
  echo "check.sh: BENCH_exec.json did not land at the repo root" >&2
  exit 1
}
if ls "$rundir"/BENCH_*.json > /dev/null 2>&1; then
  echo "check.sh: bench artifacts leaked into the run cwd" >&2
  exit 1
fi
mv "$saved" "$root/BENCH_exec.json"
echo "check.sh: all checks passed"
